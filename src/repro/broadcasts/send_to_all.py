"""Send-To-All Broadcast algorithm — the ``CAMP_n[∅]`` baseline.

Its implementation "involves simply sending messages to all participants"
(Section 3.1): the broadcast operation sends the message to every process
(itself included) and returns; delivery happens upon reception.  It
satisfies exactly the four base BC properties for messages of correct
senders and nothing more.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from ..core.message import Message
from ..runtime.effects import Deliver, Effect
from ..runtime.process import BroadcastProcess

__all__ = ["SendToAllBroadcast"]


class SendToAllBroadcast(BroadcastProcess):
    """``broadcast(m)`` = send ``m`` to all; ``deliver`` upon reception."""

    def symmetric_processes(self) -> Sequence[Iterable[int]] | None:
        # Fully pid-uniform and content-oblivious: instances differ only
        # in self.pid, address everyone alike and never read contents.
        return (range(self.n),)

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        yield from self.send_to_all(message)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        yield Deliver(message)

"""FIFO Broadcast — uniform reliable dissemination + per-sender ordering.

Each sender numbers its broadcasts; receivers buffer out-of-order messages
and deliver each sender's stream in sequence-number order.  Built on the
forward-then-deliver dissemination of
:class:`~repro.broadcasts.uniform_reliable.UniformReliableBroadcast`, so
the FIFO guarantee comes on top of uniform reliability.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect
from ..runtime.process import BroadcastProcess

__all__ = ["FifoBroadcast"]


class FifoBroadcast(BroadcastProcess):
    """Deliver each sender's messages in broadcast order, buffering gaps."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()
        self._next_seq: dict[int, int] = {}
        self._buffer: dict[int, dict[int, tuple[Message, int]]] = {}
        self._my_seq = 0

    def _learn(self, message: Message, seq: int) -> Iterator[Effect]:
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all((message, seq))
        sender_buffer = self._buffer.setdefault(message.sender, {})
        sender_buffer[seq] = (message, seq)
        expected = self._next_seq.get(message.sender, 0)
        while expected in sender_buffer:
            ready, _ = sender_buffer.pop(expected)
            yield Deliver(ready)
            expected += 1
        self._next_seq[message.sender] = expected

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        seq = self._my_seq
        self._my_seq += 1
        yield from self._learn(message, seq)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message, seq = payload
        assert isinstance(message, Message)
        yield from self._learn(message, seq)

"""An SCD Broadcast implementation over consensus-agreed batches.

Delivers each agreed round batch as one *set* (the SCD interface), built
on the same round structure as
:class:`~repro.broadcasts.total_order.RoundAgreementBroadcast`: all
processes walk consensus objects ``scd:0, scd:1, …`` in order, so they
deliver identical set sequences — which satisfies MS-Ordering outright
(no two processes ever order two messages strictly oppositely).

Substitution note: the original SCD Broadcast algorithm [Imbs et al.,
TCS 2021] runs in ``CAMP_n[∅]`` with a majority of correct processes
(t < n/2) using quorum phases; this library's substrate is wait-free
(t = n - 1), where SCD is not implementable from send/receive alone
(it is equivalent to read/write registers).  We therefore realize the
*interface and its specification* over consensus oracles — the relevant
behaviour for the paper's expressiveness remark — rather than the
original quorum protocol.  When driven by Algorithm 1 (which may attack
it like any other B over agreement objects), the resulting N-solo
executions violate MS-Ordering upon fair completion, consistent with
SCD's register-level power being out of k-SA's reach.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import DeliverSet, Effect, Propose
from ..runtime.process import BroadcastProcess

__all__ = ["ScdBroadcast"]


class ScdBroadcast(BroadcastProcess):
    """Set-constrained delivery via rounds of batch consensus."""

    object_prefix = "scd"

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()
        self._delivered: set[MessageId] = set()
        self._pending: list[Message] = []
        self._next_round = 0
        self._advancing = False

    def _advance_rounds(self) -> Iterator[Effect]:
        while any(m.uid not in self._delivered for m in self._pending):
            batch = tuple(
                sorted(
                    (
                        m
                        for m in self._pending
                        if m.uid not in self._delivered
                    ),
                    key=lambda m: m.uid,
                )
            )
            round_name = f"{self.object_prefix}:{self._next_round}"
            self._next_round += 1
            decided_batch = yield Propose(round_name, batch)
            fresh = tuple(
                m
                for m in decided_batch
                if m.uid not in self._delivered
            )
            if fresh:
                self._delivered.update(m.uid for m in fresh)
                yield DeliverSet(fresh)

    def _learn(self, message: Message) -> Iterator[Effect]:
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all(message)
        self._pending.append(message)
        # A single round-advancing generator at a time: messages learned
        # while a round is in flight accumulate in ``pending`` and get
        # proposed (and delivered) together as one set — this is where
        # the non-singleton SCD sets come from.
        if self._advancing:
            return
        self._advancing = True
        try:
            yield from self._advance_rounds()
        finally:
            self._advancing = False

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        yield from self._learn(message)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        yield from self._learn(message)

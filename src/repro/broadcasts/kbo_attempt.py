"""A k-BO Broadcast *attempt* over k-SA objects — doomed by the corollary.

Section 1.3 notes that in shared memory k-BO Broadcast is equivalent to
k-set agreement, but that implementing k-BO Broadcast *from k-SA objects
alone* in message passing "remains unproven" — and a corollary of the
paper is that it is impossible.  This class is the natural transposition
of the shared-memory construction: the round-based batch agreement of
:class:`~repro.broadcasts.total_order.RoundAgreementBroadcast`, with each
round's consensus replaced by a k-SA object.  Up to k different batches
can be decided per round, so disagreement on the delivery order is
"bounded per round".

The experiments show both halves of the corollary's story:

* under lock-step schedules the produced executions satisfy the k-BO
  ordering predicate (the bounded disagreement does not accumulate);
* under the adversarial scheduler of Algorithm 1 the algorithm yields
  N-solo executions for every N, which for N ≥ 1 and k+1 processes
  contain k+1 messages no two of which are uniformly ordered — a k-BO
  violation witness.  No tweak can fix this: that is Theorem 1.
"""

from __future__ import annotations

from .total_order import RoundAgreementBroadcast

__all__ = ["KboAttemptBroadcast"]


class KboAttemptBroadcast(RoundAgreementBroadcast):
    """Round-based batch agreement where each round is one k-SA object."""

    object_prefix = "kbo"

"""Causal Broadcast — vector clocks à la Raynal, Schiper & Toueg [24].

Every process maintains a vector ``delivered_count[s]`` of how many
messages of each sender it has causally delivered.  A broadcast carries
the sender's current vector as its causal barrier: receivers buffer the
message until, for every process ``s``, they have delivered at least
``barrier[s]`` of ``s``'s messages (and exactly ``barrier[sender]``
messages of the sender itself, giving FIFO per sender).  Dissemination is
forward-then-deliver, so the abstraction is also uniform reliable.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect
from ..runtime.process import BroadcastProcess

__all__ = ["CausalBroadcast"]


class CausalBroadcast(BroadcastProcess):
    """Vector-clock causal order on top of reliable dissemination."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()
        self._delivered_count = [0] * n
        self._pending: list[tuple[Message, tuple[int, ...]]] = []

    def _deliverable(self, barrier: tuple[int, ...], sender: int) -> bool:
        if self._delivered_count[sender] != barrier[sender]:
            return False
        return all(
            self._delivered_count[s] >= barrier[s]
            for s in range(self.n)
            if s != sender
        )

    def _drain(self) -> Iterator[Effect]:
        """Deliver every pending message whose causal barrier is met."""
        progress = True
        while progress:
            progress = False
            for entry in list(self._pending):
                message, barrier = entry
                if self._deliverable(barrier, message.sender):
                    self._pending.remove(entry)
                    self._delivered_count[message.sender] += 1
                    yield Deliver(message)
                    progress = True

    def _learn(
        self, message: Message, barrier: tuple[int, ...]
    ) -> Iterator[Effect]:
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all((message, barrier))
        self._pending.append((message, barrier))
        yield from self._drain()

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        barrier = tuple(self._delivered_count)
        yield from self._learn(message, barrier)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message, barrier = payload
        assert isinstance(message, Message)
        yield from self._learn(message, barrier)

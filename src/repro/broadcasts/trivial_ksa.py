"""The simplest correct broadcast algorithm in ``CAMP_{k+1}[k-SA]``.

``broadcast(m)``: propose ``m`` on a *private* k-SA object (named after the
message), deliver the decision locally, then send ``m`` to everyone;
``upon receive``: forward-then-deliver.  The private object has a single
proposer, so the decision is always ``m`` itself and the algorithm
implements (uniform reliable) Send-To-All semantics — but it genuinely
*uses* k-SA objects, making it the minimal non-degenerate input for
Algorithm 1: the adversary's ``decided`` bookkeeping engages on every
broadcast while the cross-process forcing of lines 17–25 never triggers
(each object has one proposer), producing the cleanest N-solo executions.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect, Propose
from ..runtime.process import BroadcastProcess

__all__ = ["TrivialKsaBroadcast"]


class TrivialKsaBroadcast(BroadcastProcess):
    """Propose on a private k-SA object, deliver, then disseminate."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        self._known.add(message.uid)
        decided = yield Propose(f"guard:{message.uid}", message)
        yield from self.send_to_all(message)
        yield Deliver(decided)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all(message)
        yield Deliver(message)

"""Uniform Reliable Broadcast — forward-then-deliver.

The classical wait-free algorithm over reliable channels (Hadzilacos &
Toueg): upon learning a message for the first time — whether by
broadcasting it or by receiving it — a process first *forwards* it to all
processes and only then delivers it.  Because channels satisfy
SR-Termination unconditionally on the sender, the forwards of a process
that delivers ``m`` reach every correct process even if it crashes right
after delivering, which yields the *uniform* agreement clause: if any
process delivers ``m``, all correct processes do.

Works for any number of failures (t = n - 1); no quorum is needed because
channels are reliable.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect
from ..runtime.process import BroadcastProcess

__all__ = ["UniformReliableBroadcast"]


class UniformReliableBroadcast(BroadcastProcess):
    """Forward to all, then deliver; at most one forward per message."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()

    def symmetric_processes(self) -> Sequence[Iterable[int]] | None:
        # Pid-uniform and content-oblivious: forwarding depends only on
        # message *identity* membership in _known, never on contents.
        return (range(self.n),)

    def _learn(self, message: Message) -> Iterator[Effect]:
        """Forward-then-deliver a message seen for the first time."""
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all(message)
        yield Deliver(message)

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        yield from self._learn(message)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        yield from self._learn(message)

"""Declarative job descriptors: what the verification service runs.

A :class:`JobDescriptor` names an algorithm, a property (a spec name or
the SR channel axioms), a system configuration (``n``, ``k``, scripts,
crashes) and the engine options of
:func:`~repro.runtime.explorer.explore_schedules`.  Descriptors are pure
data — JSON in, JSON out — so they travel over the wire, land in the
memo store, and above all *canonicalize*: two descriptors that request
the same exploration (reordered JSON keys, defaults spelled out or
omitted, lists where tuples were meant, script pids as strings) produce
the **same** :func:`job_digest`, which is the memo key that lets two
users share one exploration.

The digest is :func:`repro.runtime.fingerprint.stable_digest` over the
normalized field values plus :data:`ENGINE_SCHEMA`, the version of the
engine's canonical state encoding.  Bumping the schema (as PR 7 did,
encoding v2 = schema 5) changes every key at once: results computed
under an older encoding are never served for a newer engine, they just
age out of the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Hashable, Mapping, Sequence

from ..broadcasts import (
    CausalBroadcast,
    FifoBroadcast,
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    KSteppedKsaBroadcast,
    ScdBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
    TrivialKsaBroadcast,
    UniformReliableBroadcast,
)
from ..core.broadcast_spec import BroadcastSpec
from ..runtime import CrashSchedule, Simulator
from ..runtime.explorer import channels_property, spec_property
from ..runtime.fingerprint import stable_digest
from ..specs import (
    CausalBroadcastSpec,
    FifoBroadcastSpec,
    FirstKBroadcastSpec,
    KboBroadcastSpec,
    KScdBroadcastSpec,
    KSteppedBroadcastSpec,
    MutualBroadcastSpec,
    PairBroadcastSpec,
    ReliableBroadcastSpec,
    ScdBroadcastSpec,
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)

__all__ = [
    "ENGINE_SCHEMA",
    "ALGORITHMS",
    "SPECS",
    "DescriptorError",
    "JobDescriptor",
    "job_digest",
]

#: Version of the engine's canonical state encoding (see
#: ``BENCH_explorer.json`` schema and PR 7's encoder rewrite).  Part of
#: every memo key: digests and state counts produced under different
#: encodings are incomparable, so results memoized under an older
#: schema must never satisfy a submission against a newer engine.
ENGINE_SCHEMA = 5

#: Algorithm registry: descriptor name → ``factory(pid, n)`` class.
ALGORITHMS: Mapping[str, Callable[[int, int], Any]] = {
    "send-to-all": SendToAllBroadcast,
    "uniform-reliable": UniformReliableBroadcast,
    "fifo": FifoBroadcast,
    "causal": CausalBroadcast,
    "total-order": TotalOrderBroadcast,
    "kbo-attempt": KboAttemptBroadcast,
    "k-stepped": KSteppedKsaBroadcast,
    "scd": ScdBroadcast,
    "trivial-ksa": TrivialKsaBroadcast,
    "first-k": FirstKKsaBroadcast,
}

#: Spec registry: descriptor name → ``factory(k)`` (most specs ignore
#: ``k``; the k-indexed families consume it).  The reserved property
#: name ``"channels"`` selects the SR channel axioms instead of a spec.
SPECS: Mapping[str, Callable[[int], BroadcastSpec]] = {
    "send-to-all": lambda k: SendToAllSpec(),
    "reliable": lambda k: ReliableBroadcastSpec(),
    "uniform-reliable": lambda k: UniformReliableBroadcastSpec(),
    "fifo": lambda k: FifoBroadcastSpec(),
    "causal": lambda k: CausalBroadcastSpec(),
    "total-order": lambda k: TotalOrderBroadcastSpec(),
    "mutual": lambda k: MutualBroadcastSpec(),
    "pair": lambda k: PairBroadcastSpec(),
    "scd": lambda k: ScdBroadcastSpec(),
    "k-scd": lambda k: KScdBroadcastSpec(k),
    "kbo": lambda k: KboBroadcastSpec(k),
    "k-stepped": lambda k: KSteppedBroadcastSpec(k),
    "first-k": lambda k: FirstKBroadcastSpec(k),
}

#: The property name selecting the SR channel axioms.
_CHANNELS = "channels"

_ENGINES = ("incremental", "dedup", "replay")
_SYMMETRIES = ("none", "rename")


class DescriptorError(ValueError):
    """A job descriptor that cannot be resolved against the registry."""


def _normalize_scripts(
    scripts: Any,
) -> tuple[tuple[int, tuple[Hashable, ...]], ...]:
    """Scripts as a pid-sorted tuple of ``(pid, contents)`` pairs.

    Accepts any mapping (JSON object keys arrive as strings) or an
    already-normalized pair sequence; contents become tuples, so
    list-vs-tuple spellings of the same script canonicalize identically.
    Empty scripts are dropped — broadcasting nothing is the default.
    """
    if isinstance(scripts, Mapping):
        items = scripts.items()
    else:
        items = list(scripts)
    normalized = []
    for pid, contents in items:
        entries = tuple(contents)
        if entries:
            normalized.append((int(pid), entries))
    normalized.sort()
    pids = [pid for pid, _ in normalized]
    if len(set(pids)) != len(pids):
        raise DescriptorError(f"duplicate script pids: {pids}")
    return tuple(normalized)


def _normalize_crashes(at_step: Any) -> tuple[tuple[int, int], ...]:
    """``crash_at_step`` as a pid-sorted tuple of ``(pid, step)`` pairs."""
    if isinstance(at_step, Mapping):
        items = at_step.items()
    else:
        items = list(at_step)
    return tuple(sorted((int(pid), int(step)) for pid, step in items))


@dataclass(frozen=True)
class JobDescriptor:
    """One declarative verification job, in canonical form.

    Construction normalizes every field (see the ``_normalize_*``
    helpers), so value equality — and therefore :func:`job_digest` —
    identifies *equivalent requests*, not equal spellings.  Fields left
    at their defaults digest identically to fields spelled out.
    """

    algorithm: str
    n: int
    scripts: tuple[tuple[int, tuple[Hashable, ...]], ...]
    spec: str = _CHANNELS
    k: int = 1
    assume_complete: bool = False
    sync_broadcasts: bool = False
    crash_at_step: tuple[tuple[int, int], ...] = ()
    crash_initially: tuple[int, ...] = ()
    engine: str = "dedup"
    sleep_sets: bool = False
    static_independence: bool = False
    symmetry: str = "none"
    workers: int = 1
    max_schedules: int = 100_000
    max_depth: int = 400
    stop_at_first_violation: bool = False
    #: Node expansions between :class:`ProgressSnapshot` emissions.
    #: Telemetry cadence only — deliberately part of the descriptor (it
    #: is what the submitter asked the stream to look like) but see
    #: :meth:`memo_fields`: it is excluded from the memo key, since the
    #: exploration *result* does not depend on it.
    progress_every: int = 1000

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scripts", _normalize_scripts(self.scripts)
        )
        object.__setattr__(
            self, "crash_at_step", _normalize_crashes(self.crash_at_step)
        )
        object.__setattr__(
            self,
            "crash_initially",
            tuple(sorted(int(p) for p in set(self.crash_initially))),
        )
        self._validate()

    def _validate(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise DescriptorError(
                f"unknown algorithm {self.algorithm!r}; registered: "
                f"{sorted(ALGORITHMS)}"
            )
        if self.spec != _CHANNELS and self.spec not in SPECS:
            raise DescriptorError(
                f"unknown spec {self.spec!r}; registered: "
                f"{sorted(SPECS)} (or {_CHANNELS!r})"
            )
        if self.n < 1:
            raise DescriptorError(f"n must be >= 1, got {self.n}")
        if self.k < 1:
            raise DescriptorError(f"k must be >= 1, got {self.k}")
        if self.engine not in _ENGINES:
            raise DescriptorError(
                f"unknown engine {self.engine!r}; expected one of {_ENGINES}"
            )
        if self.symmetry not in _SYMMETRIES:
            raise DescriptorError(
                f"unknown symmetry {self.symmetry!r}; "
                f"expected one of {_SYMMETRIES}"
            )
        if self.workers < 1:
            raise DescriptorError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.max_schedules < 1 or self.max_depth < 1:
            raise DescriptorError(
                "max_schedules and max_depth must be >= 1"
            )
        if self.progress_every < 1:
            raise DescriptorError(
                f"progress_every must be >= 1, got {self.progress_every}"
            )
        for pid, _ in self.scripts:
            if not 0 <= pid < self.n:
                raise DescriptorError(
                    f"script pid {pid} outside 0..{self.n - 1}"
                )
        for pid, step in self.crash_at_step:
            if not 0 <= pid < self.n:
                raise DescriptorError(
                    f"crash pid {pid} outside 0..{self.n - 1}"
                )
            if step < 0:
                raise DescriptorError(f"crash step {step} negative")
        for pid in self.crash_initially:
            if not 0 <= pid < self.n:
                raise DescriptorError(
                    f"initial-crash pid {pid} outside 0..{self.n - 1}"
                )

    # -- wire format ------------------------------------------------------

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "JobDescriptor":
        """Build a descriptor from its JSON dict; inverse of :meth:`to_json`.

        Unknown keys are rejected loudly — a typoed engine flag that
        silently fell back to a default would memoize the *wrong*
        exploration under the caller's intended key.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise DescriptorError(
                f"unknown descriptor keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        missing = {"algorithm", "n", "scripts"} - set(data)
        if missing:
            raise DescriptorError(
                f"missing required descriptor keys {sorted(missing)}"
            )
        return cls(**dict(data))

    def to_json(self) -> dict:
        """The canonical JSON dict of this descriptor."""
        return {
            "algorithm": self.algorithm,
            "spec": self.spec,
            "n": self.n,
            "k": self.k,
            "scripts": {
                str(pid): list(contents) for pid, contents in self.scripts
            },
            "assume_complete": self.assume_complete,
            "sync_broadcasts": self.sync_broadcasts,
            "crash_at_step": {
                str(pid): step for pid, step in self.crash_at_step
            },
            "crash_initially": list(self.crash_initially),
            "engine": self.engine,
            "sleep_sets": self.sleep_sets,
            "static_independence": self.static_independence,
            "symmetry": self.symmetry,
            "workers": self.workers,
            "max_schedules": self.max_schedules,
            "max_depth": self.max_depth,
            "stop_at_first_violation": self.stop_at_first_violation,
            "progress_every": self.progress_every,
        }

    # -- resolution -------------------------------------------------------

    def build(
        self,
    ) -> tuple[
        Simulator,
        dict[int, tuple[Hashable, ...]],
        Any,
        CrashSchedule | None,
        dict[str, Any],
    ]:
        """Resolve the descriptor into ``explore_schedules`` arguments.

        Returns ``(simulator, scripts, property, crash_schedule,
        engine_kwargs)`` — everything but the ``progress`` callback,
        which the job runner supplies.
        """
        algorithm = ALGORITHMS[self.algorithm]
        simulator = Simulator(
            self.n,
            lambda pid, n: algorithm(pid, n),
            k=self.k,
            sync_broadcasts=self.sync_broadcasts,
        )
        if self.spec == _CHANNELS:
            prop = channels_property(assume_complete=self.assume_complete)
        else:
            prop = spec_property(
                SPECS[self.spec](self.k),
                assume_complete=self.assume_complete,
            )
        crash: CrashSchedule | None = None
        if self.crash_at_step or self.crash_initially:
            crash = CrashSchedule(
                at_step=dict(self.crash_at_step),
                initially=frozenset(self.crash_initially),
            )
        kwargs: dict[str, Any] = {
            "engine": self.engine,
            "sleep_sets": self.sleep_sets,
            "static_independence": self.static_independence or None,
            "symmetry": self.symmetry,
            "workers": self.workers,
            "max_schedules": self.max_schedules,
            "max_depth": self.max_depth,
            "stop_at_first_violation": self.stop_at_first_violation,
        }
        if kwargs["static_independence"] is None:
            del kwargs["static_independence"]
        else:
            kwargs["static_independence"] = True
        return simulator, dict(self.scripts), prop, crash, kwargs

    # -- memoization ------------------------------------------------------

    def memo_fields(self) -> tuple[tuple[str, Any], ...]:
        """The (name, value) pairs the memo key is computed over.

        Everything that changes what the engine explores or reports is
        in; ``progress_every`` — pure telemetry cadence — is out, so two
        submissions differing only in how often they want progress
        events still share one exploration.  ``workers`` *is* included:
        sharded runs are violation-equivalent but not construction
        -identical to sequential ones (covered-terminal counts may
        drift under subset reuse), and the memo promises the latter.
        """
        return tuple(
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name != "progress_every"
        )

    def estimated_cost(self) -> int:
        """A coarse, deterministic size estimate for batching decisions.

        Not a prediction of wall-clock — just a monotone proxy (processes
        times script entries, raised to a capped power standing in for
        tree depth) that lets the job manager group *small* jobs into one
        worker dispatch without ever batching a depth-8 showcase behind
        them.
        """
        total = sum(len(contents) for _, contents in self.scripts)
        return (self.n * max(1, total)) ** min(3, max(1, total))


def job_digest(
    descriptor: JobDescriptor, *, schema: int = ENGINE_SCHEMA
) -> str:
    """The memo key of a descriptor: canonical digest + engine schema.

    Built on :func:`repro.runtime.fingerprint.stable_digest`, the same
    tagged canonical encoding the engine keys states with — stable
    across interpreter runs and machines, which is what lets a
    persisted memo store serve warm restarts.  ``schema`` is baked into
    the digest so entries computed by an incompatible engine version can
    never collide with current keys.
    """
    return stable_digest(
        "repro.server.job", schema, descriptor.memo_fields()
    )

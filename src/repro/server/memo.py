"""The memo store: explored state spaces as shared, cacheable artifacts.

One exploration of a depth-8 configuration costs hundreds of thousands
of scheduled events; its :class:`~repro.runtime.explorer.ExplorationResult`
serializes to a few kilobytes.  The store keeps those results keyed by
:func:`~repro.server.descriptor.job_digest`, so an equivalent submission
— from the same client or a different one — is answered from memory
instead of the process pool.

Eviction is **cost-aware LRU** (GreedyDual-Size): every entry carries a
credit ``clock + cost / size``, where ``cost`` is the seconds the
exploration took and ``size`` its serialized byte estimate.  When the
store exceeds its bounds (entry count *or* estimated total bytes), the
entry with the lowest credit is evicted and the clock advances to its
credit — so cheap-to-recompute, bulky, long-unused results go first,
while an expensive exploration survives long stretches of small-job
traffic.  A hit refreshes the entry's credit at the current clock, so
with uniform ``cost/size`` the policy degenerates to LRU at the
granularity of eviction epochs (ties broken by key for determinism).

The store persists to a JSON file (:meth:`MemoStore.save` /
:meth:`MemoStore.load`) in recency order, which is what gives the
service warm restarts: digests are stable across interpreter runs, so a
restarted server answers yesterday's configurations instantly.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["MemoEntry", "MemoStore"]

#: On-disk format version (bumped on incompatible layout changes).
_PERSIST_SCHEMA = 1


@dataclass
class MemoEntry:
    """One memoized result with its eviction-policy bookkeeping."""

    key: str
    payload: dict
    #: Seconds the memoized exploration took — the recomputation cost
    #: eviction weighs against ``size``.
    cost: float
    #: Estimated serialized size in bytes (what the byte bound sums).
    size: int
    hits: int = 0
    #: GreedyDual credit: ``clock-at-touch + cost / size``.
    credit: float = 0.0


class MemoStore:
    """Bounded, cost-aware, persistable mapping from job digests to results.

    ``max_entries`` and ``max_bytes`` bound the store; both are enforced
    on every :meth:`put`.  A single payload larger than ``max_bytes`` is
    stored alone (the store never refuses the result it just paid for —
    it evicts everything else instead).
    """

    def __init__(
        self, *, max_entries: int = 256, max_bytes: int = 16 << 20
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: Insertion/refresh order is recency order (dict preserves it);
        #: eviction scans credits, recency only tie-breaks via _clock.
        self._entries: dict[str, MemoEntry] = {}
        self._clock = 0.0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core operations --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def total_bytes(self) -> int:
        """Current estimated footprint of all payloads."""
        return sum(entry.size for entry in self._entries.values())

    def get(self, key: str) -> dict | None:
        """The payload memoized under ``key`` (a deep copy), or ``None``.

        A hit refreshes the entry's recency and credit; the returned
        copy is the caller's to mutate — the stored artifact is shared
        by every future hit and must stay pristine.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        entry.hits += 1
        entry.credit = self._clock + entry.cost / max(1, entry.size)
        # refresh recency: re-insert at the MRU end
        del self._entries[key]
        self._entries[key] = entry
        return copy.deepcopy(entry.payload)

    def put(self, key: str, payload: dict, *, cost: float) -> MemoEntry:
        """Memoize ``payload`` under ``key``, evicting to stay in bounds.

        ``cost`` is the recomputation price in seconds; ``size`` is
        estimated from the compact JSON serialization.  Re-putting an
        existing key replaces the payload and refreshes recency.
        """
        size = len(
            json.dumps(payload, separators=(",", ":"), sort_keys=True)
        )
        if key in self._entries:
            del self._entries[key]
        entry = MemoEntry(
            key=key,
            payload=copy.deepcopy(payload),
            cost=max(0.0, cost),
            size=size,
            credit=self._clock + max(0.0, cost) / max(1, size),
        )
        self._entries[key] = entry
        self._shrink()
        return entry

    def _shrink(self) -> None:
        """Evict lowest-credit entries until both bounds hold."""
        while len(self._entries) > self.max_entries or (
            len(self._entries) > 1 and self.total_bytes() > self.max_bytes
        ):
            victim = min(
                self._entries.values(), key=lambda e: (e.credit, e.key)
            )
            # GreedyDual: the clock inflates to the evicted credit, so
            # long-lived entries only survive on real cost, not age.
            self._clock = max(self._clock, victim.credit)
            del self._entries[victim.key]
            self._evictions += 1

    def entries(self) -> Iterator[MemoEntry]:
        """Entries in recency order, least recent first (no copy)."""
        return iter(self._entries.values())

    def stats(self) -> dict:
        """Counters for the service's ``stats`` verb."""
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }

    # -- persistence ------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the store to ``path`` atomically (write + rename).

        Entries are saved in recency order with their cost/size/hit
        bookkeeping, so a reloaded store evicts the same way the live
        one would have.
        """
        data = {
            "schema": _PERSIST_SCHEMA,
            "entries": [
                {
                    "key": entry.key,
                    "payload": entry.payload,
                    "cost": entry.cost,
                    "size": entry.size,
                    "hits": entry.hits,
                }
                for entry in self._entries.values()
            ],
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(data, handle)
        os.replace(tmp, path)

    @classmethod
    def load(
        cls,
        path: str,
        *,
        max_entries: int = 256,
        max_bytes: int = 16 << 20,
    ) -> "MemoStore":
        """A store warmed from ``path`` (empty on missing/stale files).

        An unreadable or wrong-schema file yields an *empty* store
        rather than an error: the memo is a cache, and a cold start is
        always a safe answer.  Loaded entries are re-bounded against the
        configured limits, least-recent evicted first.
        """
        store = cls(max_entries=max_entries, max_bytes=max_bytes)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return store
        if not isinstance(data, dict) or data.get("schema") != _PERSIST_SCHEMA:
            return store
        for item in data.get("entries", []):
            try:
                entry = store.put(
                    str(item["key"]),
                    dict(item["payload"]),
                    cost=float(item["cost"]),
                )
                entry.hits = int(item.get("hits", 0))
            except (KeyError, TypeError, ValueError):
                continue  # skip torn entries, keep the rest
        return store

"""NDJSON framing for the verification service.

Every message — request, reply, or streamed event — is one JSON object
per line, UTF-8, ``\\n``-terminated.  The framing is symmetric: the
client and server use the same two coroutines over asyncio streams.

Requests carry an ``op`` field (``ping`` / ``submit`` / ``status`` /
``result`` / ``watch`` / ``cancel`` / ``jobs`` / ``stats`` /
``shutdown``) and may carry a client-chosen ``id``, which the service
echoes on every message it emits for that request.  Replies carry
``ok`` (with ``error`` when false); ``watch`` additionally streams
``{"op": "event", ...}`` lines until the job's terminal event.
"""

from __future__ import annotations

import asyncio
import json

__all__ = [
    "MAX_LINE",
    "ProtocolError",
    "encode_message",
    "read_message",
    "write_message",
]

#: Upper bound on one NDJSON line (shields both ends from runaway
#: frames; also passed as the StreamReader limit).
MAX_LINE = 8 << 20


class ProtocolError(ValueError):
    """A frame that is not one well-formed JSON object per line."""


def encode_message(message: dict) -> bytes:
    """``message`` as one compact, newline-terminated JSON line."""
    line = json.dumps(message, separators=(",", ":"), sort_keys=True)
    return line.encode("utf-8") + b"\n"


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """The next message on ``reader``, or ``None`` at a clean EOF."""
    try:
        line = await reader.readline()
    except ValueError as exc:  # StreamReader limit overrun
        raise ProtocolError(f"frame exceeds {MAX_LINE} bytes") from exc
    if not line:
        return None
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


async def write_message(
    writer: asyncio.StreamWriter, message: dict
) -> None:
    """Send one message and drain the transport."""
    writer.write(encode_message(message))
    await writer.drain()

"""The asyncio verification service.

:class:`VerificationService` wires the pieces together: an NDJSON
request loop per connection (TCP via :meth:`serve_tcp`, or a single
stdio session via :meth:`serve_stdio`), a :class:`~repro.server.jobs.
JobManager` executing descriptors on the bounded worker pool, and a
:class:`~repro.server.memo.MemoStore` answering repeat configurations
without recomputation.

Verbs (see :mod:`repro.server.protocol` for framing):

``ping``
    Liveness probe.
``submit``
    ``{"descriptor": {...}, "priority": 0, "wait": false}`` — validate
    and queue a job.  Replies with the job id, state, digest, and
    whether it was a memo hit; with ``wait`` the reply is delayed until
    the job is terminal and includes the result.
``status`` / ``result`` / ``cancel``
    ``{"job": "job-1"}`` — summary, terminal result (waits), or
    cancellation.
``watch``
    Streams ``{"op": "event", ...}`` lines — ``running``, ``progress``
    (with the :class:`ProgressSnapshot` payload), then the terminal
    ``done``/``failed``/``cancelled`` event — and finally a closing
    reply.  Watching an already-finished job yields its terminal event
    immediately.
``resume``
    ``{"job": "job-1"}`` — resubmit a cancelled or failed job.  With
    checkpointing enabled the new attempt picks up the previous
    attempt's on-disk search state instead of starting cold.
``jobs`` / ``stats``
    Introspection.
``shutdown``
    Graceful stop: refuse new submissions, drain running jobs, persist
    the memo store (warm restarts), close the listener.  The *signal*
    path (SIGINT/SIGTERM under ``python -m repro.server serve``) is
    stricter: running jobs are interrupted checkpoint-first via
    :meth:`JobManager.stop_running`, so a long exploration never holds
    up process exit and never loses its progress.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
from typing import Any

from .descriptor import DescriptorError, JobDescriptor
from .jobs import JobManager, JobRecord
from .memo import MemoStore
from .protocol import MAX_LINE, ProtocolError, read_message, write_message

__all__ = ["VerificationService"]

#: Event names that end a watch stream.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class VerificationService:
    """One service instance: memo store + job manager + request loop."""

    def __init__(
        self,
        *,
        memo_path: str | None = None,
        max_workers: int = 2,
        batch_max: int = 4,
        small_cost: int = 32,
        max_entries: int = 256,
        max_bytes: int = 16 << 20,
        backend: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 256,
    ) -> None:
        if memo_path is not None:
            memo = MemoStore.load(
                memo_path, max_entries=max_entries, max_bytes=max_bytes
            )
        else:
            memo = MemoStore(max_entries=max_entries, max_bytes=max_bytes)
        self.memo_path = memo_path
        self.manager = JobManager(
            memo,
            max_workers=max_workers,
            batch_max=batch_max,
            small_cost=small_cost,
            backend=backend,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._shutdown_requested = asyncio.Event()
        self._stop_running = False
        self._stopped = False

    # -- transports -------------------------------------------------------

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the return value is the
        real one.
        """
        self._server = await asyncio.start_server(
            self.handle_connection, host, port, limit=MAX_LINE
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_stdio(self) -> None:
        """Serve exactly one session over this process's stdin/stdout."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=MAX_LINE)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, proto = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, proto, reader, loop)
        await self.handle_connection(reader, writer)

    async def run_until_shutdown(self) -> None:
        """Block until a ``shutdown`` verb (or :meth:`request_shutdown`)."""
        await self._shutdown_requested.wait()
        await self.shutdown()

    def request_shutdown(self, *, stop_running: bool = False) -> None:
        """Signal-handler-safe trigger for :meth:`run_until_shutdown`.

        With ``stop_running`` (the SIGINT/SIGTERM path), running jobs
        are interrupted — checkpoint first, then stop — instead of being
        awaited to completion: an operator signal means "exit now
        without losing work", not "exit whenever the searches finish".
        """
        if stop_running:
            self._stop_running = True
        self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Drain jobs, persist the memo, close the listener.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        if self._stop_running:
            self.manager.stop_running()
        await self.manager.drain()
        if self.memo_path is not None:
            self.manager.memo.save(self.memo_path)

    # -- request loop -----------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client session: read requests until EOF, answer each."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(
                        writer, {"ok": False, "error": str(exc)}
                    )
                    continue
                if request is None:
                    break
                await self._dispatch(request, writer)
                if self._shutdown_requested.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown cancelled the session; close out quietly
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        op = request.get("op")
        rid = request.get("id")

        def reply(payload: dict) -> dict:
            message = {"ok": True, "op": op, **payload}
            if rid is not None:
                message["id"] = rid
            return message

        try:
            if op == "ping":
                await write_message(writer, reply({"pong": True}))
            elif op == "submit":
                await self._op_submit(request, writer, reply)
            elif op == "status":
                record = self._record(request)
                await write_message(writer, reply(record.summary()))
            elif op == "result":
                record = self._record(request)
                await record.wait()
                await write_message(
                    writer,
                    reply({**record.summary(), "result": record.result}),
                )
            elif op == "watch":
                await self._op_watch(request, writer, reply)
            elif op == "cancel":
                record = self._record(request)
                assured = self.manager.cancel(record.job_id)
                await write_message(
                    writer,
                    reply({**record.summary(), "cancelled": assured}),
                )
            elif op == "resume":
                record = self._record(request)
                try:
                    resumed = self.manager.resume(record.job_id)
                except RuntimeError as exc:  # draining
                    raise ProtocolError(str(exc)) from exc
                await write_message(
                    writer,
                    reply(
                        {
                            **resumed.summary(),
                            "resumed_from": record.job_id,
                        }
                    ),
                )
            elif op == "jobs":
                await write_message(
                    writer, reply({"jobs": self.manager.jobs()})
                )
            elif op == "stats":
                await write_message(
                    writer, reply({"stats": self.manager.stats()})
                )
            elif op == "shutdown":
                await write_message(writer, reply({"stopping": True}))
                self._shutdown_requested.set()
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except (ProtocolError, DescriptorError, KeyError) as exc:
            error = (
                f"unknown job {exc.args[0]!r}"
                if isinstance(exc, KeyError)
                else str(exc)
            )
            message: dict = {"ok": False, "op": op, "error": error}
            if rid is not None:
                message["id"] = rid
            await write_message(writer, message)

    def _record(self, request: dict) -> JobRecord:
        job_id = request.get("job")
        if not isinstance(job_id, str):
            raise ProtocolError("request needs a string 'job' field")
        return self.manager.get(job_id)

    async def _op_submit(
        self, request: dict, writer: asyncio.StreamWriter, reply: Any
    ) -> None:
        payload = request.get("descriptor")
        if not isinstance(payload, dict):
            raise ProtocolError("submit needs a 'descriptor' object")
        priority = request.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError("'priority' must be an integer")
        descriptor = JobDescriptor.from_json(payload)
        try:
            record = self.manager.submit(descriptor, priority=priority)
        except RuntimeError as exc:  # draining
            raise ProtocolError(str(exc)) from exc
        if request.get("wait"):
            await record.wait()
            await write_message(
                writer,
                reply({**record.summary(), "result": record.result}),
            )
        else:
            await write_message(writer, reply(record.summary()))

    async def _op_watch(
        self, request: dict, writer: asyncio.StreamWriter, reply: Any
    ) -> None:
        record = self._record(request)
        rid = request.get("id")
        queue = self.manager.subscribe(record.job_id)
        try:
            await write_message(
                writer, reply({"job": record.job_id, "watching": True})
            )
            while True:
                event = await queue.get()
                message = {"op": "event", "job": record.job_id, **event}
                if rid is not None:
                    message["id"] = rid
                await write_message(writer, message)
                if event.get("event") in _TERMINAL_EVENTS:
                    break
        finally:
            self.manager.unsubscribe(record.job_id, queue)

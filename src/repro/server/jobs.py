"""Job lifecycle: queueing, batching, execution, progress fan-out.

The :class:`JobManager` owns every submission end to end:

* **states** — ``queued → running → done | failed | cancelled``, with
  memo hits materializing directly as ``done`` records;
* **priority queueing** — a heap ordered by ``(priority, submission
  sequence)``: lower priority numbers run first, FIFO within a class;
* **batching** — consecutive same-priority jobs whose
  :meth:`~repro.server.descriptor.JobDescriptor.estimated_cost` falls
  under the small-job threshold are dispatched as *one* worker unit,
  amortizing process start-up over configurations too small to deserve
  their own fork;
* **coalescing** — a submission whose digest matches a queued/running
  job attaches to that job instead of enqueueing a duplicate: the two
  submissions share one exploration, exactly like a memo hit shares a
  past one;
* **progress fan-out** — the engine's
  :class:`~repro.runtime.explorer.ProgressSnapshot` callback is bridged
  from the worker into per-job asyncio subscription queues, so any
  number of watchers stream a live exploration.

Two execution backends share the same message protocol
(``start`` / ``progress`` / ``done`` / ``failed`` / ``skipped`` /
``cancelled`` tuples):

* ``"process"`` (default where ``fork`` exists) — each batch runs in a
  forked worker process, streaming messages over a pipe; a bounded
  number of such workers (``max_workers``) run concurrently, and
  cancellation of a running job terminates its worker (unfinished
  batch-mates are requeued, not lost);
* ``"thread"`` — the degraded mode for fork-less platforms: batches run
  on executor threads.  A started job is interrupted *cooperatively*: a
  per-job cancel event is threaded into the engine, which polls it at
  node entry, writes a checkpoint (when checkpointing is on), and
  returns promptly with ``interrupted=True`` — reported as
  ``cancelled``.  Only jobs on the replay engine (no cancel support)
  still run to completion; not-yet-started batch members are skipped.

With ``checkpoint_dir`` set, running explorations checkpoint
periodically under ``<dir>/<job digest>.ckpt``.  The digest-keyed path
is the warm-restart contract: a requeued batch-mate, a job whose worker
died, a cancelled-then-resumed job, or the same descriptor resubmitted
to a restarted service all find the previous attempt's checkpoint and
resume instead of starting cold.  Checkpoints are deleted when their
job completes (the memo takes over from there).
"""

from __future__ import annotations

import asyncio
import glob
import heapq
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from ..runtime.checkpoint import CheckpointError
from ..runtime.explorer import explore_schedules
from .descriptor import JobDescriptor, job_digest
from .memo import MemoStore

__all__ = ["JobState", "JobRecord", "JobManager"]

#: Times a job whose worker died is requeued (resuming from its
#: checkpoint) before it is failed for good.  Without a checkpoint a
#: died-worker job still fails on the first death — re-running it cold
#: would repeat whatever killed the worker.
_REQUEUE_CAP = 3


class JobState(Enum):
    """Lifecycle of one submission."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobRecord:
    """One tracked job: descriptor, state, result, and its subscribers."""

    job_id: str
    descriptor: JobDescriptor
    digest: str
    priority: int
    state: JobState = JobState.QUEUED
    #: True when the result came from the memo store, not a fresh run.
    memo_hit: bool = False
    #: Submissions answered by this record (coalesced equivalents).
    submissions: int = 1
    #: ``ExplorationResult.to_json()`` payload once done.
    result: dict | None = None
    violations_digest: str | None = None
    error: str | None = None
    #: Seconds the exploration took (memo hits report the original's).
    cost_seconds: float = 0.0
    #: Times this job was requeued after its worker died; bounded by
    #: ``_REQUEUE_CAP``.
    requeues: int = 0
    _subscribers: list[asyncio.Queue] = field(
        default_factory=list, repr=False
    )
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def summary(self) -> dict:
        """The status dict served for this job."""
        return {
            "job": self.job_id,
            "digest": self.digest,
            "state": self.state.value,
            "priority": self.priority,
            "memo_hit": self.memo_hit,
            "submissions": self.submissions,
            "violations_digest": self.violations_digest,
            "error": self.error,
            "cost_seconds": round(self.cost_seconds, 6),
        }

    async def wait(self) -> None:
        """Block until the job reaches a terminal state."""
        await self._done.wait()


# ---------------------------------------------------------------------------
# Worker-side execution (runs in a forked process or an executor thread)
# ---------------------------------------------------------------------------


def _run_descriptor(
    descriptor: JobDescriptor,
    emit: Callable[[dict], None] | None,
    *,
    cancel: Any | None = None,
    checkpoint_to: str | None = None,
    checkpoint_every: int = 256,
) -> tuple[dict, str, float]:
    """Execute one descriptor; returns ``(result_json, vdigest, seconds)``.

    ``emit`` receives each :class:`ProgressSnapshot` as its ``to_json``
    dict.  Progress is only wired where the engine supports it (the
    sequential incremental engines); the replay oracle and sharded runs
    execute without it.  ``cancel``/``checkpoint_to`` are likewise wired
    only for the incremental engines: a run with a checkpoint path
    resumes from an existing file at that path (the digest-keyed warm
    restart), falling back to a cold run — after discarding the file —
    when it turns out stale or corrupt.  An interrupted run returns its
    partial result; the caller inspects ``payload["interrupted"]``.
    """
    simulator, scripts, prop, crash, kwargs = descriptor.build()
    progress: Callable[[Any], None] | None = None
    if (
        emit is not None
        and kwargs.get("workers", 1) == 1
        and kwargs.get("engine") != "replay"
    ):
        callback = emit

        def stream(snapshot: Any) -> None:
            callback(snapshot.to_json())

        progress = stream

    if kwargs.get("engine") != "replay":
        if cancel is not None:
            kwargs["cancel"] = cancel
        if checkpoint_to is not None:
            kwargs["checkpoint_to"] = checkpoint_to
            kwargs["checkpoint_every"] = checkpoint_every
            if os.path.exists(checkpoint_to):
                kwargs["resume_from"] = checkpoint_to

    started = time.perf_counter()
    try:
        result = explore_schedules(
            simulator,
            scripts,
            prop,
            crash_schedule=crash,
            progress=progress,
            progress_every=descriptor.progress_every,
            **kwargs,
        )
    except CheckpointError:
        if not kwargs.pop("resume_from", None):
            raise
        # stale or corrupt at-rest state: this attempt starts cold
        _discard_checkpoint_files(checkpoint_to)
        result = explore_schedules(
            simulator,
            scripts,
            prop,
            crash_schedule=crash,
            progress=progress,
            progress_every=descriptor.progress_every,
            **kwargs,
        )
    elapsed = time.perf_counter() - started
    return result.to_json(), result.violations_digest(), elapsed


def _discard_checkpoint_files(path: str | None) -> None:
    """Remove a job's checkpoint and any per-shard side files."""
    if path is None:
        return
    for name in [path, *glob.glob(f"{path}.shard-*")]:
        try:
            os.unlink(name)
        except OSError:
            pass


def _batch_worker(
    conn: Any,
    batch: list[tuple[str, JobDescriptor, str | None]],
    checkpoint_every: int,
) -> None:
    """Forked-process entry point: run a batch, stream messages back."""
    # The serving parent installs benign SIGINT/SIGTERM handlers
    # (checkpoint-first shutdown), and a fork inherits them — which
    # would turn ``terminate()`` into a no-op and make "cancel" mean
    # "run to completion anyway".  Workers die on signal, by design:
    # the periodic checkpoint is what survives them.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    try:
        for job_id, descriptor, checkpoint_to in batch:
            conn.send(("start", job_id))

            def emit(snapshot: dict, job_id: str = job_id) -> None:
                conn.send(("progress", job_id, snapshot))

            try:
                payload, vdigest, cost = _run_descriptor(
                    descriptor,
                    emit,
                    checkpoint_to=checkpoint_to,
                    checkpoint_every=checkpoint_every,
                )
                if payload.get("interrupted"):
                    conn.send(("cancelled", job_id))
                else:
                    conn.send(("done", job_id, payload, vdigest, cost))
            except Exception as exc:
                conn.send(
                    ("failed", job_id, f"{type(exc).__name__}: {exc}")
                )
    finally:
        conn.close()


@dataclass
class _BatchHandle:
    """Parent-side bookkeeping for one dispatched batch."""

    jobs: list[JobRecord]
    process: Any | None = None
    cancel_requested: set[str] = field(default_factory=set)
    started: set[str] = field(default_factory=set)
    #: Thread backend only: per-job cooperative cancel events, polled by
    #: the engine at node entry.
    cancel_events: dict[str, threading.Event] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class JobManager:
    """Bounded asynchronous execution of verification jobs over a memo.

    ``max_workers`` bounds concurrent batches (the process-pool width),
    ``batch_max`` the number of small jobs grouped per dispatch, and
    ``small_cost`` the :meth:`~JobDescriptor.estimated_cost` threshold
    under which jobs are batchable.  ``backend`` is ``"process"``,
    ``"thread"``, or ``None`` to pick ``"process"`` where the ``fork``
    start method exists.  ``checkpoint_dir`` enables digest-keyed job
    checkpoints (module docstring) written every ``checkpoint_every``
    node expansions; the directory is created on first use.
    """

    def __init__(
        self,
        memo: MemoStore,
        *,
        max_workers: int = 2,
        batch_max: int = 4,
        small_cost: int = 32,
        backend: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 256,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if backend is None:
            try:
                multiprocessing.get_context("fork")
                backend = "process"
            except ValueError:
                backend = "thread"
        if backend not in ("process", "thread"):
            raise ValueError(
                f"unknown backend {backend!r}: expected 'process' or 'thread'"
            )
        self.memo = memo
        self.max_workers = max_workers
        self.batch_max = batch_max
        self.small_cost = small_cost
        self.backend = backend
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        self._jobs: dict[str, JobRecord] = {}
        self._heap: list[tuple[int, int, str]] = []
        #: digest → job_id of the queued/running job answering it.
        self._active_by_digest: dict[str, str] = {}
        self._batches: dict[str, _BatchHandle] = {}
        self._tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._seq = 0
        self._draining = False
        self._submitted = 0
        self._memo_hits = 0
        self._coalesced = 0
        self._explorations_run = 0
        self._batches_dispatched = 0
        self._batched_jobs = 0
        self._resumed = 0
        self._requeued_after_death = 0

    def _checkpoint_path(self, digest: str) -> str | None:
        """The digest-keyed checkpoint file for a job, if enabled.

        Keyed by the job digest, not the job id: every attempt at an
        equivalent descriptor — across requeues, cancellations, and
        service restarts — shares one checkpoint, which is what makes
        warm restart a property of the *work*, not of the process that
        happened to start it.
        """
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, f"{digest}.ckpt")

    # -- submission -------------------------------------------------------

    def submit(
        self, descriptor: JobDescriptor, *, priority: int = 0
    ) -> JobRecord:
        """Queue a job (or answer it from the memo / an in-flight twin).

        Returns the :class:`JobRecord` serving this submission: a fresh
        queued record, an instantly-``done`` memo-hit record, or the
        existing record of an equivalent queued/running job (coalesced —
        one exploration, many submitters).
        """
        if self._draining:
            raise RuntimeError("manager is draining; submissions refused")
        digest = job_digest(descriptor)
        self._submitted += 1
        active_id = self._active_by_digest.get(digest)
        if active_id is not None:
            record = self._jobs[active_id]
            record.submissions += 1
            self._coalesced += 1
            return record
        self._seq += 1
        job_id = f"job-{self._seq}"
        memoized = self.memo.get(digest)
        if memoized is not None:
            record = JobRecord(
                job_id,
                descriptor,
                digest,
                priority,
                state=JobState.DONE,
                memo_hit=True,
                result=memoized["result"],
                violations_digest=memoized["violations_digest"],
                cost_seconds=float(memoized.get("cost_seconds", 0.0)),
            )
            record._done.set()
            self._jobs[job_id] = record
            self._memo_hits += 1
            return record
        record = JobRecord(job_id, descriptor, digest, priority)
        self._jobs[job_id] = record
        self._active_by_digest[digest] = job_id
        heapq.heappush(self._heap, (priority, self._seq, job_id))
        self._maybe_dispatch()
        return record

    def get(self, job_id: str) -> JobRecord:
        """The record for ``job_id`` (:class:`KeyError` when unknown)."""
        return self._jobs[job_id]

    # -- subscriptions ----------------------------------------------------

    def subscribe(self, job_id: str) -> asyncio.Queue:
        """An event queue for ``job_id`` (progress + terminal events).

        Subscribing to an already-finished job immediately delivers its
        terminal event, so late watchers never hang.
        """
        record = self._jobs[job_id]
        queue: asyncio.Queue = asyncio.Queue()
        record._subscribers.append(queue)
        if record.state.terminal:
            queue.put_nowait(self._terminal_event(record))
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        record = self._jobs.get(job_id)
        if record is not None and queue in record._subscribers:
            record._subscribers.remove(queue)

    def _publish(self, record: JobRecord, event: dict) -> None:
        for queue in list(record._subscribers):
            queue.put_nowait(event)

    def _terminal_event(self, record: JobRecord) -> dict:
        if record.state is JobState.DONE:
            return {
                "event": "done",
                "job": record.job_id,
                "memo_hit": record.memo_hit,
                "violations_digest": record.violations_digest,
                "cost_seconds": round(record.cost_seconds, 6),
                "result": record.result,
            }
        if record.state is JobState.FAILED:
            return {
                "event": "failed",
                "job": record.job_id,
                "error": record.error,
            }
        return {"event": "cancelled", "job": record.job_id}

    # -- dispatch ---------------------------------------------------------

    def _maybe_dispatch(self) -> None:
        while (
            self._busy < self.max_workers
            and self._heap
            and not self._draining
        ):
            batch = self._pop_batch()
            if not batch:
                return
            self._busy += 1
            self._batches_dispatched += 1
            if len(batch) > 1:
                self._batched_jobs += len(batch)
            task = asyncio.create_task(self._run_batch(batch))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    def _pop_batch(self) -> list[JobRecord]:
        """The next batch: one job, or several *small* same-priority jobs."""
        batch: list[JobRecord] = []
        while self._heap and not batch:
            _, _, job_id = heapq.heappop(self._heap)
            record = self._jobs[job_id]
            if record.state is JobState.QUEUED:
                batch.append(record)  # else: lazily-deleted (cancelled)
        if not batch:
            return batch
        lead = batch[0]
        if lead.descriptor.estimated_cost() > self.small_cost:
            return batch
        while len(batch) < self.batch_max and self._heap:
            priority, _, job_id = self._heap[0]
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.QUEUED:
                heapq.heappop(self._heap)
                continue
            if (
                priority != lead.priority
                or record.descriptor.estimated_cost() > self.small_cost
            ):
                break
            heapq.heappop(self._heap)
            batch.append(record)
        return batch

    async def _run_batch(self, batch: list[JobRecord]) -> None:
        handle = _BatchHandle(jobs=batch)
        for record in batch:
            record.state = JobState.RUNNING
            self._batches[record.job_id] = handle
            self._publish(
                record, {"event": "running", "job": record.job_id}
            )
        try:
            if self.backend == "process":
                await self._run_batch_process(handle)
            else:
                await self._run_batch_thread(handle)
        finally:
            for record in handle.jobs:
                self._batches.pop(record.job_id, None)
            self._busy -= 1
            self._maybe_dispatch()

    async def _run_batch_process(self, handle: _BatchHandle) -> None:
        loop = asyncio.get_running_loop()
        ctx = multiprocessing.get_context("fork")
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        payload = [
            (r.job_id, r.descriptor, self._checkpoint_path(r.digest))
            for r in handle.jobs
        ]
        # not a daemon: descriptors with workers > 1 fork their own
        # shard pool inside the worker, which daemons are denied
        process = ctx.Process(
            target=_batch_worker,
            args=(send_conn, payload, self.checkpoint_every),
        )
        process.start()
        handle.process = process
        send_conn.close()
        queue: asyncio.Queue = asyncio.Queue()

        def pump() -> None:
            """Drain the pipe on a thread; messages hop onto the loop."""
            while True:
                try:
                    message = recv_conn.recv()
                except (EOFError, OSError):
                    break
                loop.call_soon_threadsafe(queue.put_nowait, message)
            loop.call_soon_threadsafe(queue.put_nowait, None)

        pump_done = loop.run_in_executor(None, pump)
        while True:
            message = await queue.get()
            if message is None:
                break
            self._handle_message(handle, message)
        await pump_done
        await loop.run_in_executor(None, process.join)
        recv_conn.close()
        self._finalize_batch(handle, exitcode=process.exitcode)

    async def _run_batch_thread(self, handle: _BatchHandle) -> None:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        handle.cancel_events = {
            record.job_id: threading.Event() for record in handle.jobs
        }

        def emit(message: tuple | None) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, message)

        def run() -> None:
            for record in handle.jobs:
                if record.job_id in handle.cancel_requested:
                    emit(("skipped", record.job_id))
                    continue
                emit(("start", record.job_id))
                try:
                    payload, vdigest, cost = _run_descriptor(
                        record.descriptor,
                        lambda s, job_id=record.job_id: emit(
                            ("progress", job_id, s)
                        ),
                        cancel=handle.cancel_events[record.job_id],
                        checkpoint_to=self._checkpoint_path(record.digest),
                        checkpoint_every=self.checkpoint_every,
                    )
                    if payload.get("interrupted"):
                        emit(("cancelled", record.job_id))
                    else:
                        emit(
                            ("done", record.job_id, payload, vdigest, cost)
                        )
                except Exception as exc:
                    emit(
                        (
                            "failed",
                            record.job_id,
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
            emit(None)

        run_done = loop.run_in_executor(None, run)
        while True:
            message = await queue.get()
            if message is None:
                break
            self._handle_message(handle, message)
        await run_done
        self._finalize_batch(handle, exitcode=0)

    def _handle_message(self, handle: _BatchHandle, message: tuple) -> None:
        kind = message[0]
        record = self._jobs[message[1]]
        if kind == "start":
            handle.started.add(record.job_id)
        elif kind == "progress":
            self._publish(
                record,
                {
                    "event": "progress",
                    "job": record.job_id,
                    "snapshot": message[2],
                },
            )
        elif kind == "done":
            _, _, payload, vdigest, cost = message
            self._complete(record, payload, vdigest, cost)
        elif kind == "failed":
            self._fail(record, message[2])
        elif kind == "skipped":
            self._cancelled(record)
        elif kind == "cancelled":
            self._cancelled(record)

    def _complete(
        self, record: JobRecord, payload: dict, vdigest: str, cost: float
    ) -> None:
        record.state = JobState.DONE
        record.result = payload
        record.violations_digest = vdigest
        record.cost_seconds = cost
        self._explorations_run += 1
        self.memo.put(
            record.digest,
            {
                "result": payload,
                "violations_digest": vdigest,
                "cost_seconds": cost,
                "descriptor": record.descriptor.to_json(),
            },
            cost=cost,
        )
        self._active_by_digest.pop(record.digest, None)
        # the memo answers this digest from here on; the at-rest search
        # state has nothing left to resume
        _discard_checkpoint_files(self._checkpoint_path(record.digest))
        self._publish(record, self._terminal_event(record))
        record._done.set()

    def _fail(self, record: JobRecord, error: str) -> None:
        record.state = JobState.FAILED
        record.error = error
        self._active_by_digest.pop(record.digest, None)
        self._publish(record, self._terminal_event(record))
        record._done.set()

    def _cancelled(self, record: JobRecord) -> None:
        record.state = JobState.CANCELLED
        self._active_by_digest.pop(record.digest, None)
        self._publish(record, self._terminal_event(record))
        record._done.set()

    def _finalize_batch(
        self, handle: _BatchHandle, exitcode: int | None
    ) -> None:
        """Settle batch members the worker never reported a verdict for.

        After a clean batch every job is terminal.  After a terminated
        or crashed worker: the cancel target becomes ``cancelled``, a
        job that had *started* (and wasn't the target) died with the
        worker — with a checkpoint on disk it is requeued to resume warm
        (at most ``_REQUEUE_CAP`` times: a job that keeps killing its
        worker is failed, not retried forever), without one it fails
        loudly — and jobs the worker never reached are requeued;
        cancellation of a batch-mate must not lose them.
        """
        for record in handle.jobs:
            if record.state is not JobState.RUNNING:
                continue
            if record.job_id in handle.cancel_requested:
                self._cancelled(record)
            elif record.job_id in handle.started:
                path = self._checkpoint_path(record.digest)
                if (
                    path is not None
                    and os.path.exists(path)
                    and record.requeues < _REQUEUE_CAP
                ):
                    record.requeues += 1
                    self._requeued_after_death += 1
                    self._requeue(record)
                else:
                    self._fail(
                        record,
                        f"worker process died (exitcode {exitcode})",
                    )
            else:
                self._requeue(record)

    def _requeue(self, record: JobRecord) -> None:
        record.state = JobState.QUEUED
        self._seq += 1
        heapq.heappush(
            self._heap, (record.priority, self._seq, record.job_id)
        )

    # -- cancellation and shutdown ---------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when it is assured.

        Queued jobs cancel immediately.  A running job on the process
        backend has its worker terminated (batch-mates are requeued by
        :meth:`_finalize_batch`).  On the thread backend a started job
        is interrupted cooperatively: its cancel event is set and the
        engine stops at the next node entry (checkpointing first when
        enabled) — except replay-engine jobs, which cannot observe the
        event; for those the request is recorded (not-yet-started batch
        members will be skipped) and ``False`` is returned.
        """
        record = self._jobs[job_id]
        if record.state.terminal:
            return record.state is JobState.CANCELLED
        handle = self._batches.get(job_id)
        if record.state is JobState.QUEUED and handle is None:
            self._cancelled(record)  # heap entry is lazily skipped
            return True
        if handle is None:
            return False
        handle.cancel_requested.add(job_id)
        if handle.process is not None:
            handle.process.terminate()
            return True
        event = handle.cancel_events.get(job_id)
        if event is not None and record.descriptor.engine != "replay":
            event.set()
            return True
        return False

    def stop_running(self) -> int:
        """Interrupt every running batch (checkpoint-and-stop shutdown).

        Marks all running jobs cancel-requested, then terminates process
        workers and sets every thread-backend cancel event.  Jobs with
        checkpointing enabled leave their partial search on disk, so a
        restarted service resumes them warm.  Returns the number of jobs
        interrupted.  Unlike :meth:`drain`, this does not wait — callers
        (the signal path) follow up with :meth:`drain` to let workers
        finish writing their final checkpoints and settle records.
        """
        stopped = 0
        for handle in {
            id(h): h for h in self._batches.values()
        }.values():
            for record in handle.jobs:
                if record.state is JobState.RUNNING:
                    handle.cancel_requested.add(record.job_id)
                    stopped += 1
            if handle.process is not None:
                handle.process.terminate()
            for event in handle.cancel_events.values():
                event.set()
        return stopped

    def resume(self, job_id: str) -> JobRecord:
        """Resubmit a cancelled or failed job (warm from its checkpoint).

        Resubmission goes through :meth:`submit` with the original
        descriptor and priority: the digest is unchanged, so the new
        attempt finds the previous attempt's checkpoint (when one was
        written) and continues instead of starting cold.  A job that is
        queued, running, or done is returned as-is — there is nothing
        to resume.
        """
        record = self._jobs[job_id]
        if record.state not in (JobState.CANCELLED, JobState.FAILED):
            return record
        self._resumed += 1
        return self.submit(record.descriptor, priority=record.priority)

    async def drain(self) -> None:
        """Refuse new work, cancel the queue, await running batches."""
        self._draining = True
        for record in list(self._jobs.values()):
            if (
                record.state is JobState.QUEUED
                and record.job_id not in self._batches
            ):
                self._cancelled(record)
        while self._tasks:
            await asyncio.gather(
                *list(self._tasks), return_exceptions=True
            )

    async def wait_idle(self) -> None:
        """Await every in-flight batch (testing/shutdown helper)."""
        while self._tasks:
            await asyncio.gather(
                *list(self._tasks), return_exceptions=True
            )

    # -- introspection ----------------------------------------------------

    def jobs(self) -> list[dict]:
        """Summaries of every tracked job, in submission order."""
        return [record.summary() for record in self._jobs.values()]

    def stats(self) -> dict:
        """Manager + memo counters for the ``stats`` verb."""
        by_state: dict[str, int] = {state.value: 0 for state in JobState}
        for record in self._jobs.values():
            by_state[record.state.value] += 1
        return {
            "backend": self.backend,
            "max_workers": self.max_workers,
            "batch_max": self.batch_max,
            "small_cost": self.small_cost,
            "submitted": self._submitted,
            "memo_hits": self._memo_hits,
            "coalesced": self._coalesced,
            "explorations_run": self._explorations_run,
            "batches_dispatched": self._batches_dispatched,
            "batched_jobs": self._batched_jobs,
            "checkpoint_dir": self.checkpoint_dir,
            "resumed": self._resumed,
            "requeued_after_death": self._requeued_after_death,
            "jobs_by_state": by_state,
            "memo": self.memo.stats(),
        }

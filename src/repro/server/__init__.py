"""Exploration-as-a-service: the repo's verification server.

The package turns :func:`~repro.runtime.explorer.explore_schedules`
from a blocking library call into a shared, long-running service:
declarative :class:`JobDescriptor`\\ s arrive over an NDJSON protocol,
a :class:`JobManager` runs them on a bounded worker pool with priority
queueing and small-job batching, and a fingerprint-keyed
:class:`MemoStore` answers equivalent submissions from memory — the
explored state space outlives the call that produced it.

See ``docs/service.md`` for the architecture and wire protocol.
"""

from .client import ServiceClient, ServiceError
from .descriptor import (
    ALGORITHMS,
    ENGINE_SCHEMA,
    SPECS,
    DescriptorError,
    JobDescriptor,
    job_digest,
)
from .jobs import JobManager, JobRecord, JobState
from .memo import MemoEntry, MemoStore
from .protocol import ProtocolError
from .service import VerificationService

__all__ = [
    "ALGORITHMS",
    "ENGINE_SCHEMA",
    "SPECS",
    "DescriptorError",
    "JobDescriptor",
    "JobManager",
    "JobRecord",
    "JobState",
    "MemoEntry",
    "MemoStore",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "VerificationService",
    "job_digest",
]

"""Command-line front end: ``python -m repro.server``.

``serve`` runs the verification service (TCP by default, ``--stdio``
for a single piped session); the remaining subcommands are thin client
verbs against a running server.  ``selfcheck`` is the self-contained
smoke used by CI: it boots an in-process server on an ephemeral port
and walks the acceptance path — cold run with a live progress stream,
memo-hit on an equivalent respelling, violation surfacing, graceful
shutdown with memo persistence, warm restart, and eviction bounds.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import glob
import json
import os
import signal
import sys
import tempfile
from typing import Any

from .client import ServiceClient
from .memo import MemoStore
from .service import VerificationService

#: The depth-8 showcase configuration (2520 terminals, 321 dedup
#: states) — the canonical cold-run workload of the smoke.
_SHOWCASE: dict[str, Any] = {
    "algorithm": "send-to-all",
    "n": 3,
    "scripts": {"0": ["a"], "1": ["b"]},
    "engine": "dedup",
    "progress_every": 50,
}

#: The same request, spelled differently: reordered keys, defaults made
#: explicit, a different telemetry cadence.  Must hit the memo.
_SHOWCASE_RESPELLED: dict[str, Any] = {
    "scripts": {"1": ["b"], "0": ["a"]},
    "engine": "dedup",
    "n": 3,
    "k": 1,
    "sleep_sets": False,
    "symmetry": "none",
    "algorithm": "send-to-all",
    "progress_every": 200,
}

#: A deliberately long job on the plain incremental engine (seconds of
#: wall clock, bounded by ``max_schedules``) — slow enough that a
#: SIGTERM lands mid-flight, bounded enough to finish.  The checkpoint
#: round-trip phase of the selfcheck kills a server running this job
#: and expects a restarted one to complete it warm.
_LONG: dict[str, Any] = {
    "algorithm": "send-to-all",
    "n": 3,
    "scripts": {"0": ["a", "b"], "1": ["c"]},
    "engine": "incremental",
    "max_schedules": 20_000,
    "progress_every": 25,
}

#: send-to-all checked against the total-order spec: violating.
_VIOLATING: dict[str, Any] = {
    "algorithm": "send-to-all",
    "n": 2,
    "scripts": {"0": ["x"], "1": ["y"]},
    "spec": "total-order",
    "engine": "dedup",
}


def _print(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


# -- serve -----------------------------------------------------------------


async def _cmd_serve(args: argparse.Namespace) -> int:
    service = VerificationService(
        memo_path=args.memo,
        max_workers=args.max_workers,
        batch_max=args.batch_max,
        small_cost=args.small_cost,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        backend=args.backend,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    # Both transports get the same operator contract: SIGINT/SIGTERM
    # interrupt running jobs checkpoint-first, then drain and persist
    # the memo — an orderly exit, never a lost search.
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(
                sig,
                lambda: service.request_shutdown(stop_running=True),
            )
    if args.stdio:
        session = asyncio.create_task(service.serve_stdio())
        stopper = asyncio.create_task(service.run_until_shutdown())
        # first of: client EOF (session ends) or a signal (stopper
        # proceeds to shutdown, which cancels the session)
        await asyncio.wait(
            {session, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        service.request_shutdown()
        await stopper
        with contextlib.suppress(asyncio.CancelledError):
            await session
        return 0
    host, port = await service.serve_tcp(args.host, args.port)
    print(f"repro.server listening on {host}:{port}", flush=True)
    await service.run_until_shutdown()
    return 0


# -- client verbs ----------------------------------------------------------


async def _cmd_submit(args: argparse.Namespace) -> int:
    if args.file is not None:
        with open(args.file) as handle:
            descriptor = json.load(handle)
    else:
        descriptor = json.loads(args.descriptor)
    async with ServiceClient(args.host, args.port) as client:
        reply = await client.submit(
            descriptor, priority=args.priority, wait=args.wait
        )
        _print(reply)
        if args.watch and not args.wait:
            async for event in client.watch(reply["job"]):
                print(json.dumps(event, sort_keys=True), flush=True)
    return 0


def _independence_line(stats: Any) -> str | None:
    """A one-line rendering of ``independence_stats``, or None if empty.

    Shown on stderr by ``watch`` so the stdout event stream stays pure
    NDJSON for machine consumers.
    """
    if not isinstance(stats, dict) or not stats:
        return None
    parts = [
        f"{name}={stats[name]}"
        for name in ("dynamic", "crash_proof", "static_table",
                     "conservative")
        if stats.get(name)
    ]
    queries = stats.get("memo_queries", 0)
    if queries:
        parts.append(f"memo={stats.get('memo_hits', 0)}/{queries}")
    return " ".join(parts) if parts else None


async def _cmd_watch(args: argparse.Namespace) -> int:
    async with ServiceClient(args.host, args.port) as client:
        async for event in client.watch(args.job):
            print(json.dumps(event, sort_keys=True), flush=True)
            if event.get("event") == "progress":
                stats = (event.get("snapshot") or {}).get(
                    "independence_stats"
                )
            elif event.get("event") == "done":
                stats = (event.get("result") or {}).get(
                    "independence_stats"
                )
            else:
                stats = None
            line = _independence_line(stats)
            if line is not None:
                print(f"# independence: {line}", file=sys.stderr,
                      flush=True)
    return 0


async def _cmd_simple(args: argparse.Namespace) -> int:
    async with ServiceClient(args.host, args.port) as client:
        verb = getattr(client, args.command)
        if args.command in ("status", "result", "cancel", "resume"):
            _print(await verb(args.job))
        else:
            _print(await verb())
    return 0


# -- selfcheck -------------------------------------------------------------


class _SelfcheckFailure(AssertionError):
    pass


def _check(condition: bool, label: str) -> None:
    if not condition:
        raise _SelfcheckFailure(label)
    print(f"ok - {label}", flush=True)


async def _cmd_selfcheck(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        memo_path = os.path.join(tmp, "memo.json")
        service = VerificationService(
            memo_path=memo_path, max_workers=args.max_workers
        )
        host, port = await service.serve_tcp("127.0.0.1", 0)
        runner = asyncio.create_task(service.run_until_shutdown())
        async with ServiceClient(host, port) as submitter, ServiceClient(
            host, port
        ) as watcher:
            _check((await submitter.ping())["pong"], "service answers ping")
            job = (await submitter.submit(_SHOWCASE))["job"]
            progress = 0
            terminal: dict | None = None
            async for event in watcher.watch(job):
                if event["event"] == "progress":
                    progress += 1
                elif event["event"] == "done":
                    terminal = event
            _check(
                terminal is not None and bool(terminal["result"]),
                "cold run completed",
            )
            _check(
                progress >= 1,
                f"live subscriber streamed progress snapshots ({progress})",
            )
            cold = await submitter.result(job)
            _check(
                not cold["memo_hit"], "first submission ran the explorer"
            )
            warm = await submitter.submit(_SHOWCASE_RESPELLED, wait=True)
            _check(warm["memo_hit"], "respelled submission is a memo hit")
            _check(
                warm["violations_digest"] == cold["violations_digest"],
                "memo hit preserves the violations digest",
            )
            _check(
                warm["result"]["states_seen"]
                == cold["result"]["states_seen"],
                "memo hit preserves states_seen",
            )
            _check(
                warm["result"] == cold["result"],
                "memo hit is construction-identical",
            )
            violating = await submitter.submit(_VIOLATING, wait=True)
            _check(
                len(violating["result"]["violations"]) > 0,
                "total-order violation surfaced",
            )
            stats = await submitter.stats()
            _check(
                stats["explorations_run"] == 2,
                "two distinct configurations, exactly two explorations",
            )
            await submitter.shutdown()
        await runner
        _check(os.path.exists(memo_path), "shutdown persisted the memo")

        restarted = VerificationService(memo_path=memo_path)
        host, port = await restarted.serve_tcp("127.0.0.1", 0)
        async with ServiceClient(host, port) as client:
            rewarm = await client.submit(_SHOWCASE, wait=True)
            _check(
                rewarm["memo_hit"],
                "warm restart answers from the persisted memo",
            )
            _check(
                rewarm["violations_digest"] == cold["violations_digest"],
                "restart preserves digests across interpreter state",
            )
        await restarted.shutdown()

        # -- checkpoint round-trip: SIGTERM mid-job, warm resume -------
        ckpt_dir = os.path.join(tmp, "ckpt")
        ckpt_memo = os.path.join(tmp, "memo-ckpt.json")
        serve_argv = [
            sys.executable, "-m", "repro.server", "serve",
            "--port", "0", "--memo", ckpt_memo,
            "--checkpoint-dir", ckpt_dir, "--checkpoint-every", "25",
            "--max-workers", "1",
        ]
        proc = await asyncio.create_subprocess_exec(
            *serve_argv, stdout=asyncio.subprocess.PIPE
        )
        assert proc.stdout is not None
        banner = await asyncio.wait_for(proc.stdout.readline(), 60)
        port = int(banner.decode().strip().rsplit(":", 1)[1])
        async with ServiceClient("127.0.0.1", port) as client:
            job = (await client.submit(_LONG))["job"]
            progressed = 0
            async for event in client.watch(job):
                if event["event"] == "progress":
                    progressed += 1
                    if progressed >= 3:
                        break
                elif event["event"] not in ("running",):
                    break
        proc.send_signal(signal.SIGTERM)
        await asyncio.wait_for(proc.wait(), 60)
        _check(
            progressed >= 3 and bool(glob.glob(f"{ckpt_dir}/*.ckpt")),
            "SIGTERM left the interrupted search checkpointed on disk",
        )

        proc = await asyncio.create_subprocess_exec(
            *serve_argv, stdout=asyncio.subprocess.PIPE
        )
        assert proc.stdout is not None
        banner = await asyncio.wait_for(proc.stdout.readline(), 60)
        port = int(banner.decode().strip().rsplit(":", 1)[1])
        async with ServiceClient("127.0.0.1", port) as client:
            resumed = await asyncio.wait_for(
                client.submit(_LONG, wait=True), 120
            )
            _check(
                not resumed["memo_hit"]
                and resumed["state"] == "done"
                and not resumed["result"]["interrupted"],
                "restarted service completed the interrupted job warm",
            )
            await client.shutdown()
        await asyncio.wait_for(proc.wait(), 60)
        _check(
            not glob.glob(f"{ckpt_dir}/*.ckpt*"),
            "completion discarded the at-rest checkpoint",
        )

        reference_service = VerificationService()
        host, port = await reference_service.serve_tcp("127.0.0.1", 0)
        async with ServiceClient(host, port) as client:
            reference = await asyncio.wait_for(
                client.submit(_LONG, wait=True), 120
            )
        await reference_service.shutdown()
        invariant = (
            "schedules_explored", "terminal_schedules", "exhausted",
            "max_depth_seen", "states_seen", "expansions_by_depth",
            "violations",
        )
        _check(
            all(
                resumed["result"][name] == reference["result"][name]
                for name in invariant
            )
            and resumed["violations_digest"]
            == reference["violations_digest"],
            "resumed completion is construction-identical to a cold run",
        )

    store = MemoStore(max_entries=8, max_bytes=4096)
    for index in range(50):
        store.put(
            f"synthetic-{index}",
            {"payload": "x" * 64, "index": index},
            cost=float(index % 7),
        )
    _check(
        len(store) <= 8 and store.total_bytes() <= 4096,
        "eviction keeps the store within bounds under 50-entry load",
    )
    print("selfcheck: PASS", flush=True)
    return 0


# -- argument parsing ------------------------------------------------------


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7339)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Exploration-as-a-service for the broadcast explorer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the verification service")
    _add_endpoint(serve)
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve one NDJSON session over stdin/stdout instead of TCP",
    )
    serve.add_argument(
        "--memo", default=None, help="memo persistence path (warm restarts)"
    )
    serve.add_argument("--max-workers", type=int, default=2)
    serve.add_argument("--batch-max", type=int, default=4)
    serve.add_argument("--small-cost", type=int, default=32)
    serve.add_argument("--max-entries", type=int, default=256)
    serve.add_argument("--max-bytes", type=int, default=16 << 20)
    serve.add_argument("--backend", choices=["process", "thread"])
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for digest-keyed job checkpoints (warm restarts)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        help="node expansions between periodic checkpoints",
    )

    submit = sub.add_parser("submit", help="submit a job descriptor")
    _add_endpoint(submit)
    submit.add_argument(
        "descriptor", nargs="?", help="descriptor as inline JSON"
    )
    submit.add_argument("--file", help="descriptor as a JSON file")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--wait", action="store_true", help="block until terminal"
    )
    submit.add_argument(
        "--watch", action="store_true", help="stream events after submit"
    )

    watch = sub.add_parser("watch", help="stream a job's events")
    _add_endpoint(watch)
    watch.add_argument("job")

    for name, needs_job in (
        ("status", True),
        ("result", True),
        ("cancel", True),
        ("resume", True),
        ("jobs", False),
        ("stats", False),
        ("ping", False),
        ("shutdown", False),
    ):
        verb = sub.add_parser(name)
        _add_endpoint(verb)
        if needs_job:
            verb.add_argument("job")

    selfcheck = sub.add_parser(
        "selfcheck", help="in-process acceptance smoke (used by CI)"
    )
    selfcheck.add_argument("--max-workers", type=int, default=2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        runner = _cmd_serve(args)
    elif args.command == "submit":
        if (args.descriptor is None) == (args.file is None):
            print(
                "submit needs exactly one of: inline JSON or --file",
                file=sys.stderr,
            )
            return 2
        runner = _cmd_submit(args)
    elif args.command == "watch":
        runner = _cmd_watch(args)
    elif args.command == "selfcheck":
        runner = _cmd_selfcheck(args)
    else:
        runner = _cmd_simple(args)
    try:
        return asyncio.run(runner)
    except _SelfcheckFailure as exc:
        print(f"FAIL - {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())

"""Thin asyncio client for the verification service.

:class:`ServiceClient` speaks the NDJSON protocol over one TCP
connection.  Replies that carry ``ok: false`` raise
:class:`ServiceError`; everything else is returned as plain dicts, so
callers stay decoupled from server internals::

    async with ServiceClient("127.0.0.1", 7339) as client:
        reply = await client.submit(descriptor)
        async for event in client.watch(reply["job"]):
            ...

The client is deliberately not concurrency-safe: one connection, one
in-flight request (``watch`` occupies the connection until the job's
terminal event).  Open several clients for parallel conversations.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator

from .descriptor import JobDescriptor
from .protocol import MAX_LINE, read_message, write_message

__all__ = ["ServiceError", "ServiceClient"]

#: Event names that end a watch stream.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class ServiceError(RuntimeError):
    """The service answered ``ok: false`` (or closed mid-request)."""


class ServiceClient:
    """One NDJSON conversation with a :class:`VerificationService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7339) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE
        )
        return self

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- plumbing ---------------------------------------------------------

    async def _send(self, message: dict) -> None:
        if self._writer is None:
            raise ServiceError("client is not connected")
        await write_message(self._writer, message)

    async def _recv(self) -> dict:
        if self._reader is None:
            raise ServiceError("client is not connected")
        message = await read_message(self._reader)
        if message is None:
            raise ServiceError("connection closed by the service")
        return message

    async def request(self, op: str, **fields: Any) -> dict:
        """One round-trip; raises :class:`ServiceError` on ``ok: false``."""
        await self._send({"op": op, **fields})
        reply = await self._recv()
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request failed"))
        return reply

    # -- verbs ------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def submit(
        self,
        descriptor: JobDescriptor | dict,
        *,
        priority: int = 0,
        wait: bool = False,
    ) -> dict:
        """Submit a job; with ``wait`` the reply includes the result."""
        payload = (
            descriptor.to_json()
            if isinstance(descriptor, JobDescriptor)
            else descriptor
        )
        return await self.request(
            "submit", descriptor=payload, priority=priority, wait=wait
        )

    async def status(self, job: str) -> dict:
        return await self.request("status", job=job)

    async def result(self, job: str) -> dict:
        """The job's terminal summary + result (waits until terminal)."""
        return await self.request("result", job=job)

    async def cancel(self, job: str) -> dict:
        return await self.request("cancel", job=job)

    async def resume(self, job: str) -> dict:
        """Resubmit a cancelled/failed job (warm from its checkpoint)."""
        return await self.request("resume", job=job)

    async def jobs(self) -> list[dict]:
        return list((await self.request("jobs"))["jobs"])

    async def stats(self) -> dict:
        return dict((await self.request("stats"))["stats"])

    async def shutdown(self) -> dict:
        return await self.request("shutdown")

    async def watch(self, job: str) -> AsyncIterator[dict]:
        """Yield the job's events through its terminal one.

        The stream includes ``running``, each ``progress`` snapshot,
        and finally ``done``/``failed``/``cancelled``; a finished job
        yields just its terminal event.
        """
        await self.request("watch", job=job)
        while True:
            event = await self._recv()
            yield event
            if event.get("event") in _TERMINAL_EVENTS:
                return

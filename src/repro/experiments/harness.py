"""Shared plumbing for the experiment harness.

Keeps the registry of broadcast implementations the adversary can attack
(every candidate B written against the ``CAMP_{k+1}[k-SA]`` substrate) and
the candidate (implementation, specification) pairs the Theorem 1 pipeline
investigates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..broadcasts import (
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    KSteppedKsaBroadcast,
    ScdBroadcast,
    TrivialKsaBroadcast,
)
from ..core.broadcast_spec import BroadcastSpec
from ..runtime.process import BroadcastProcess
from ..specs import (
    FirstKBroadcastSpec,
    KboBroadcastSpec,
    KSteppedBroadcastSpec,
    ScdBroadcastSpec,
    SendToAllSpec,
)

__all__ = ["Candidate", "KSA_ALGORITHMS", "CANDIDATES", "algorithm_factory"]


@dataclass(frozen=True)
class Candidate:
    """One candidate equivalence pair for the Theorem 1 pipeline."""

    name: str
    algorithm: type[BroadcastProcess]
    spec_builder: Callable[[int], BroadcastSpec]
    note: str


#: Broadcast algorithms implementable in CAMP_{k+1}[k-SA] (Lemma 10 inputs).
KSA_ALGORITHMS: dict[str, type[BroadcastProcess]] = {
    "trivial-ksa": TrivialKsaBroadcast,
    "first-k": FirstKKsaBroadcast,
    "kbo-attempt": KboAttemptBroadcast,
    "scd-attempt": ScdBroadcast,
    "k-stepped": KSteppedKsaBroadcast,
}

#: The equivalence candidates the theorem pipeline dissects.
CANDIDATES: tuple[Candidate, ...] = (
    Candidate(
        "first-k",
        FirstKKsaBroadcast,
        lambda k: FirstKBroadcastSpec(k),
        "Section 1.4's one-shot candidate — fails compositionality",
    ),
    Candidate(
        "kbo-attempt",
        KboAttemptBroadcast,
        lambda k: KboBroadcastSpec(k),
        "Section 1.3's corollary — not implementable from k-SA in MP",
    ),
    Candidate(
        "trivial-ksa",
        TrivialKsaBroadcast,
        lambda k: SendToAllSpec(),
        "baseline: symmetric spec, but too weak to solve k-SA",
    ),
    Candidate(
        "scd-attempt",
        ScdBroadcast,
        lambda k: ScdBroadcastSpec(),
        "set-delivery interface (§3.1 remark); register power out of "
        "k-SA's reach",
    ),
    Candidate(
        "k-stepped",
        KSteppedKsaBroadcast,
        lambda k: KSteppedBroadcastSpec(k),
        "§3.2's iterated-k-SA candidate — fails compositionality",
    ),
)


def algorithm_factory(
    algorithm: type[BroadcastProcess],
) -> Callable[[int, int], BroadcastProcess]:
    """A (pid, n) factory for one algorithm class."""
    return lambda pid, n: algorithm(pid, n)

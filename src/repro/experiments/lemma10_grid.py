"""Experiment L1-8/L10 — the admissibility grid.

For every B-on-k-SA implementation and a grid of (k, N) values, run
Algorithm 1 and mechanically verify the paper's admissibility argument:
Lemmas 1–8 on α (and the γ_i), and Lemma 10's N-solo property on β.

Run as a script::

    python -m repro.experiments.lemma10_grid
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..adversary import adversarial_scheduler, check_all_lemmas
from ..analysis.report import ascii_table
from .harness import KSA_ALGORITHMS, algorithm_factory

__all__ = ["run", "rows", "main"]

HEADERS = (
    "B",
    "k",
    "N",
    "steps(α)",
    "resets",
    "L1",
    "L2",
    "L3",
    "L4",
    "L5",
    "L6",
    "L7",
    "L8",
    "L10 (N-solo)",
)


def rows(
    ks: Sequence[int] = (2, 3, 4, 5),
    ns: Sequence[int] = (1, 2, 4, 8),
    algorithms: Iterable[str] = ("trivial-ksa", "first-k", "kbo-attempt", "scd-attempt"),
) -> list[tuple]:
    """Grid rows: one adversary run per (algorithm, k, N) cell."""
    table: list[tuple] = []
    for name in algorithms:
        algorithm_class = KSA_ALGORITHMS[name]
        for k in ks:
            for n_value in ns:
                result = adversarial_scheduler(
                    k, n_value, algorithm_factory(algorithm_class)
                )
                reports = {r.lemma: r for r in check_all_lemmas(result)}
                table.append(
                    (
                        name,
                        k,
                        n_value,
                        len(result.execution),
                        len(result.reset_marks),
                        *(
                            "✓" if reports[lemma].ok else "✗"
                            for lemma in "12345678"
                        ),
                        "✓" if reports["10"].ok else "✗",
                    )
                )
    return table


def run(
    ks: Sequence[int] = (2, 3, 4, 5),
    ns: Sequence[int] = (1, 2, 4, 8),
    algorithms: Iterable[str] = ("trivial-ksa", "first-k", "kbo-attempt", "scd-attempt"),
) -> str:
    """The grid as a printable table."""
    header = (
        "Experiment L1-8/L10 — Lemmas 1-8 admissibility of α and γ_i, and "
        "Lemma 10's N-solo property of β,\nfor every broadcast "
        "implementation B over k-SA and a grid of (k, N):\n"
    )
    return header + ascii_table(HEADERS, rows(ks, ns, algorithms))


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()

"""Experiment M1 — register-power abstractions reject N-solo executions.

Section 1.3 recalls that k-SA (k > 1) cannot emulate shared memory in
message passing.  The broadcast-side shadow of that fact is visible in
this library: the abstractions equivalent to registers or stronger —
Mutual Broadcast, Pair Broadcast, SCD Broadcast — have ordering
predicates that *reject N-solo executions* (each forbids every pair of
processes from both seeing their own message first).  Lemma 10 says any
broadcast algorithm over k-SA objects produces N-solo executions under
Algorithm 1 — so none of these abstractions is implementable in
``CAMP_n[k-SA]``: whatever algorithm is proposed, the adversary
manufactures an execution its specification rejects.

The experiment runs Algorithm 1 (with fair completion) against every
B-on-k-SA implementation and checks the three register-power
specifications on the resulting β — all rejections; as a positive
control, Total-Order Broadcast traces from the free simulator satisfy
all three specifications (consensus power ≥ register power).

Run as a script::

    python -m repro.experiments.register_power
"""

from __future__ import annotations

from typing import Sequence

from ..adversary import adversarial_scheduler
from ..analysis.report import ascii_table
from ..broadcasts import TotalOrderBroadcast
from ..core.broadcast_spec import BroadcastSpec
from ..runtime.simulator import Simulator
from ..specs import (
    MutualBroadcastSpec,
    PairBroadcastSpec,
    ScdBroadcastSpec,
)
from .harness import KSA_ALGORITHMS, algorithm_factory

__all__ = ["rejection_rows", "control_rows", "run", "main"]

REJECTION_HEADERS = (
    "spec",
    "B over k-SA",
    "k",
    "N",
    "admits adversarial β?",
)

CONTROL_HEADERS = ("spec", "seed", "admits TO-broadcast trace?")

REGISTER_SPECS: tuple[BroadcastSpec, ...] = (
    MutualBroadcastSpec(),
    PairBroadcastSpec(),
    ScdBroadcastSpec(),
)


def rejection_rows(
    ks: Sequence[int] = (2, 3), ns: Sequence[int] = (1, 2)
) -> list[tuple]:
    """Adversarial β of every implementation vs. every register-power spec."""
    table: list[tuple] = []
    for name, algorithm_class in KSA_ALGORITHMS.items():
        for k in ks:
            for n_value in ns:
                result = adversarial_scheduler(
                    k,
                    n_value,
                    algorithm_factory(algorithm_class),
                    continue_after_flush=True,
                )
                for spec in REGISTER_SPECS:
                    verdict = spec.admits(
                        result.beta, assume_complete=False
                    )
                    table.append(
                        (
                            spec.name,
                            name,
                            k,
                            n_value,
                            "yes" if verdict.admitted else "NO (rejected)",
                        )
                    )
    return table


def control_rows(seeds: Sequence[int] = (0, 1, 2)) -> list[tuple]:
    """Positive control: TO-broadcast traces satisfy the register specs."""
    table: list[tuple] = []
    for seed in seeds:
        simulator = Simulator(
            3, lambda pid, n: TotalOrderBroadcast(pid, n), k=1, seed=seed
        )
        result = simulator.run(
            {p: [f"m{p}.{i}" for i in range(2)] for p in range(3)}
        )
        beta = result.execution.broadcast_projection()
        for spec in REGISTER_SPECS:
            verdict = spec.admits(beta)
            table.append(
                (spec.name, seed, "yes" if verdict.admitted else "NO")
            )
    return table


def run() -> str:
    parts = [
        "Experiment M1 — register-power broadcast abstractions (Mutual, "
        "Pair, SCD) reject the N-solo\nexecutions every k-SA-based "
        "implementation produces under Algorithm 1 — hence none of them\n"
        "is implementable in CAMP_n[k-SA], mirroring §1.3's 'k-SA cannot "
        "emulate shared memory':\n",
        ascii_table(REJECTION_HEADERS, rejection_rows()),
        "",
        "Positive control — the same specifications admit Total-Order "
        "Broadcast traces (consensus ≥ registers):\n",
        ascii_table(CONTROL_HEADERS, control_rows()),
    ]
    return "\n".join(parts)


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()

"""Experiment L9/T1 (and C1) — the contradiction, executed.

For each candidate equivalence pair (an implementation of B in
``CAMP_{k+1}[k-SA]`` together with B's specification), chain Lemma 10 and
Lemma 9:

1. solo runs of the k-SA-from-broadcast algorithm A' give the N_i and N;
2. Algorithm 1 produces an N-solo β for the implementation (Lemma 10);
3. restriction γ and renaming δ are built (Lemma 9's construction);
4. A' replayed on δ decides k+1 distinct values — k-SA-Agreement is
   violated *if the spec admits δ* — and the spec's verdicts on β, γ, δ
   localize the Theorem 1 hypothesis the candidate fails.

The companion corollary experiment **C1** re-runs the adversary with the
fair continuation and measures the largest disagreement clique of the
completed execution: for the k-BO attempt it exceeds k, certifying that
the produced execution violates the k-BO ordering property (k-BO Broadcast
is not implementable from k-SA in message passing).

Run as a script::

    python -m repro.experiments.theorem_pipeline
"""

from __future__ import annotations

from typing import Sequence

from ..adversary import adversarial_scheduler, run_theorem_pipeline
from ..analysis.ordering import max_disagreement_clique
from ..analysis.report import ascii_table
from .harness import CANDIDATES, algorithm_factory

__all__ = ["theorem_rows", "corollary_rows", "run", "main"]

THEOREM_HEADERS = (
    "candidate",
    "k",
    "N",
    "decisions on δ",
    "distinct",
    "agreement",
    "failing hypothesis",
)

COROLLARY_HEADERS = (
    "B",
    "k",
    "N",
    "steps",
    "max disagreement clique",
    "k-BO ordering",
)


def theorem_rows(ks: Sequence[int] = (2, 3, 4)) -> list[tuple]:
    """One pipeline run per (candidate, k)."""
    table: list[tuple] = []
    for candidate in CANDIDATES:
        for k in ks:
            result = run_theorem_pipeline(
                k,
                algorithm_factory(candidate.algorithm),
                candidate_spec=candidate.spec_builder(k),
            )
            decisions = [
                result.decisions[i] for i in sorted(result.decisions)
            ]
            table.append(
                (
                    candidate.name,
                    k,
                    result.n_value,
                    decisions,
                    result.distinct_decisions,
                    "VIOLATED" if result.agreement_violated else "ok",
                    result.failing_hypothesis,
                )
            )
    return table


def corollary_rows(
    ks: Sequence[int] = (2, 3, 4), ns: Sequence[int] = (1, 2, 4)
) -> list[tuple]:
    """C1: completed adversarial runs of the k-BO attempt, clique sizes."""
    from ..broadcasts import KboAttemptBroadcast

    table: list[tuple] = []
    for k in ks:
        for n_value in ns:
            result = adversarial_scheduler(
                k,
                n_value,
                lambda pid, n: KboAttemptBroadcast(pid, n),
                continue_after_flush=True,
            )
            clique = max_disagreement_clique(result.beta)
            table.append(
                (
                    "kbo-attempt",
                    k,
                    n_value,
                    len(result.execution),
                    clique,
                    "VIOLATED" if clique > k else "ok",
                )
            )
    return table


def run(ks: Sequence[int] = (2, 3, 4)) -> str:
    parts = [
        "Experiment L9/T1 — Lemma 9 construction + Theorem 1 "
        "contradiction per candidate pair:\n",
        ascii_table(THEOREM_HEADERS, theorem_rows(ks)),
        "",
        "Experiment C1 — corollary: the k-BO attempt over k-SA, completed "
        "fairly after Algorithm 1,\nviolates the k-BO ordering predicate "
        "(largest pairwise-disagreeing message set exceeds k):\n",
        ascii_table(COROLLARY_HEADERS, corollary_rows(ks)),
    ]
    return "\n".join(parts)


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()

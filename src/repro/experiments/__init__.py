"""The experiment harness: one module per paper artifact.

==========  ===========================================  =====================
experiment  paper artifact                                module
==========  ===========================================  =====================
F1          Figure 1 (adversarial execution)              :mod:`.figure1`
L1-8, L10   Lemmas 1–8 and 10 (admissibility grid)        :mod:`.lemma10_grid`
L9/T1, C1   Lemma 9 + Theorem 1, and the k-BO corollary   :mod:`.theorem_pipeline`
S1          Section 3.2 symmetry worked examples          :mod:`.symmetry_matrix`
M1          §1.3 "k-SA cannot emulate shared memory"      :mod:`.register_power`
P4          (ours) algorithm cost profiles                :mod:`.costs`
B1          k = 1 and k = n boundary cases                :mod:`.boundaries`
==========  ===========================================  =====================

Each module exposes ``run(...) -> str`` (the rendered result) and a
``main()`` for command-line use; :func:`run_all` concatenates everything
(this is what ``EXPERIMENTS.md`` records).
"""

from . import boundaries, costs, figure1, lemma10_grid, register_power
from . import symmetry_matrix, theorem_pipeline

__all__ = [
    "boundaries",
    "costs",
    "figure1",
    "lemma10_grid",
    "register_power",
    "run_all",
    "symmetry_matrix",
    "theorem_pipeline",
]


def run_all() -> str:
    """Run every experiment and concatenate the rendered outputs."""
    sections = [
        figure1.run(),
        lemma10_grid.run(),
        theorem_pipeline.run(),
        symmetry_matrix.run(),
        register_power.run(),
        boundaries.run(),
        costs.run(),
    ]
    rule = "\n" + "=" * 78 + "\n"
    return rule.join(sections)

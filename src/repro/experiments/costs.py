"""Experiment P4 — cost profiles of the broadcast algorithms.

Not a paper artifact (the paper proves an impossibility, no complexity
bounds); this table tracks the classical costs of the implemented
algorithms on identical workloads so that regressions and the expected
asymptotics stay visible:

* Send-To-All: n sends per broadcast, no oracle use;
* forward-then-deliver family (uniform-reliable, FIFO, causal): ~n²
  sends per broadcast (each process forwards once);
* the agreement-based algorithms add oracle proposals (one per process
  per round);
* the trivial/first-k k-SA algorithms use O(1) proposals per broadcast.

Run as a script::

    python -m repro.experiments.costs
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.complexity import cost_profile
from ..analysis.latency import latency_stats
from ..analysis.report import ascii_table
from ..broadcasts import (
    CausalBroadcast,
    FifoBroadcast,
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    ScdBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
    TrivialKsaBroadcast,
    UniformReliableBroadcast,
)
from ..runtime.simulator import Simulator

__all__ = ["rows", "run", "main"]

HEADERS = (
    "algorithm",
    "oracle",
    "broadcasts",
    "sends",
    "sends/bcast",
    "proposals/bcast",
    "deliveries/bcast",
    "latency p50/p90",
)

ALGORITHMS = (
    ("send-to-all", SendToAllBroadcast, None),
    ("uniform-reliable", UniformReliableBroadcast, None),
    ("fifo", FifoBroadcast, None),
    ("causal", CausalBroadcast, None),
    ("total-order", TotalOrderBroadcast, 1),
    ("trivial-ksa", TrivialKsaBroadcast, 2),
    ("first-k", FirstKKsaBroadcast, 2),
    ("kbo-attempt", KboAttemptBroadcast, 2),
    ("scd", ScdBroadcast, 1),
)


def rows(
    *, n: int = 4, per_process: int = 3, seeds: Sequence[int] = (0, 1, 2)
) -> list[tuple]:
    """Average cost profiles over identical workloads and seeds."""
    table: list[tuple] = []
    for name, algorithm_class, k in ALGORITHMS:
        profiles = []
        latencies = []
        for seed in seeds:
            simulator = Simulator(
                n,
                lambda pid, size: algorithm_class(pid, size),
                k=k or 1,
                seed=seed,
            )
            result = simulator.run(
                {
                    p: [f"m{p}.{i}" for i in range(per_process)]
                    for p in range(n)
                }
            )
            assert result.quiescent, (name, seed, result.blocked)
            profiles.append(cost_profile(result.execution))
            latencies.append(latency_stats(result.execution))
        count = len(profiles)
        mean = lambda values: sum(values) / count  # noqa: E731
        table.append(
            (
                name,
                f"{k}-SA" if k else "—",
                profiles[0].broadcasts,
                round(mean([p.sends for p in profiles])),
                f"{mean([p.sends_per_broadcast for p in profiles]):.1f}",
                f"{mean([p.proposals_per_broadcast for p in profiles]):.2f}",
                f"{mean([p.delivery_ratio for p in profiles]):.1f}",
                f"{mean([s.median for s in latencies]):.0f}/"
                f"{mean([s.p90 for s in latencies]):.0f}",
            )
        )
    return table


def run(*, n: int = 4, per_process: int = 3) -> str:
    header = (
        f"Experiment P4 — cost profiles on identical workloads "
        f"({n} processes × {per_process} broadcasts, mean of 3 seeds):\n"
    )
    return header + ascii_table(HEADERS, rows(n=n, per_process=per_process))


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()

"""Experiment S1 — the symmetry matrix of Section 3.2.

For every broadcast abstraction in the catalogue, decide (by exhaustive or
targeted falsification) whether it is compositional (Definition 2) and
content-neutral (Definition 3).  The matrix reproduces the paper's
worked examples:

* k-BO Broadcast and all order-predicate abstractions (FIFO, Causal,
  Total-Order, Send-To-All, Reliable) are both compositional and
  content-neutral — no counterexample exists among all subsets/renamings
  of the probe executions;
* 1-Stepped Broadcast is **not compositional** — the checker rediscovers
  the paper's ``{m'_0, m_1}`` restriction;
* First-k Broadcast (Section 1.4) is **not compositional** — restricting
  away the agreed first message manufactures too many first deliveries;
* the SA-tagged abstraction (Section 3.2) is **not content-neutral** —
  renaming plain messages into ``SA(ksa, v)`` contents manufactures
  violations.  (In our formalization its per-type first-delivery bound is
  not compositional either, for the same reason as First-k.)

A "VIOLATED" verdict carries an actual counterexample (a proof); a "✓"
verdict means no counterexample among the enumerated cases (evidence —
for the order-predicate abstractions, the paper's Section 3.2 argument is
the proof).

Run as a script::

    python -m repro.experiments.symmetry_matrix
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..analysis.report import ascii_table
from ..broadcasts import (
    CausalBroadcast,
    FifoBroadcast,
    ScdBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
    UniformReliableBroadcast,
)
from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.symmetry import (
    SymmetryResult,
    check_compositional,
    check_content_neutral,
)
from ..runtime.simulator import Simulator
from ..specs import (
    CausalBroadcastSpec,
    FifoBroadcastSpec,
    FirstKBroadcastSpec,
    GenericBroadcastSpec,
    KboBroadcastSpec,
    KScdBroadcastSpec,
    KSteppedBroadcastSpec,
    MutualBroadcastSpec,
    PairBroadcastSpec,
    ReliableBroadcastSpec,
    SaTaggedBroadcastSpec,
    ScdBroadcastSpec,
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)
from ..specs.witnesses import (
    first_k_agreed_execution,
    generic_conflict_renaming,
    kstepped_paper_example,
    sa_typed_renaming,
    solo_first_execution,
)

__all__ = ["MatrixRow", "rows", "run", "main"]

HEADERS = (
    "abstraction",
    "compositional",
    "content-neutral",
    "notes",
)


@dataclass
class MatrixRow:
    """One abstraction's measured symmetry verdicts."""

    spec: BroadcastSpec
    compositional: SymmetryResult
    content_neutral: SymmetryResult
    note: str = ""

    def cells(self) -> tuple[str, str, str, str]:
        def cell(result: SymmetryResult) -> str:
            if result.skipped_reason:
                return "(vacuous)"
            if result.holds:
                return f"✓ ({result.cases_checked} cases)"
            return "VIOLATED"

        return (
            self.spec.name,
            cell(self.compositional),
            cell(self.content_neutral),
            self.note,
        )


def _simulated_beta(algorithm_class, *, n=3, per_process=2, seed=11, k=1):
    simulator = Simulator(
        n, lambda pid, size: algorithm_class(pid, size), k=k, seed=seed
    )
    result = simulator.run(
        {p: [f"c{p}.{i}" for i in range(per_process)] for p in range(n)}
    )
    return result.execution.broadcast_projection()


def rows() -> list[MatrixRow]:
    """Measure the symmetry matrix for the whole catalogue."""
    table: list[MatrixRow] = []

    implementable: list[tuple[BroadcastSpec, Callable[[], Execution], str]] = [
        (
            SendToAllSpec(),
            lambda: _simulated_beta(SendToAllBroadcast),
            "base properties only",
        ),
        (
            ReliableBroadcastSpec(),
            lambda: _simulated_beta(UniformReliableBroadcast),
            "per-message liveness clause",
        ),
        (
            UniformReliableBroadcastSpec(),
            lambda: _simulated_beta(UniformReliableBroadcast),
            "per-message liveness clause",
        ),
        (
            FifoBroadcastSpec(),
            lambda: _simulated_beta(FifoBroadcast),
            "per-pair order predicate",
        ),
        (
            CausalBroadcastSpec(),
            lambda: _simulated_beta(CausalBroadcast),
            "per-pair order predicate",
        ),
        (
            TotalOrderBroadcastSpec(),
            lambda: _simulated_beta(TotalOrderBroadcast),
            "= 1-BO; paper §3.2 proves compositionality",
        ),
        (
            KboBroadcastSpec(2),
            lambda: _simulated_beta(TotalOrderBroadcast),
            "set predicate; paper §3.2 proves compositionality",
        ),
        (
            MutualBroadcastSpec(),
            lambda: _simulated_beta(TotalOrderBroadcast),
            "register power [9]; rejects N-solo (see M1)",
        ),
        (
            PairBroadcastSpec(),
            lambda: _simulated_beta(TotalOrderBroadcast),
            "test-and-set power [10]; rejects N-solo (see M1)",
        ),
        (
            ScdBroadcastSpec(),
            lambda: _simulated_beta(ScdBroadcast),
            "set-constrained delivery (§3.1 remark)",
        ),
        (
            KScdBroadcastSpec(2),
            lambda: _simulated_beta(ScdBroadcast),
            "our k-generalization of MS-Ordering",
        ),
    ]
    for spec, build, note in implementable:
        beta = build()
        table.append(
            MatrixRow(
                spec,
                check_compositional(spec, beta, max_cases=1024),
                check_content_neutral(spec, beta, max_cases=12),
                note,
            )
        )

    # 1-Stepped Broadcast: the paper's own counterexample.
    stepped_execution, paper_subset = kstepped_paper_example()
    stepped_spec = KSteppedBroadcastSpec(1)
    table.append(
        MatrixRow(
            stepped_spec,
            check_compositional(
                stepped_spec, stepped_execution, subsets=[paper_subset]
            ),
            check_content_neutral(stepped_spec, stepped_execution),
            "paper's {m'_0, m_1} restriction",
        )
    )

    # First-k Broadcast: restriction removes the agreed head message.
    first_k_spec = FirstKBroadcastSpec(2)
    agreed_execution, violating_subset = first_k_agreed_execution(4)
    table.append(
        MatrixRow(
            first_k_spec,
            check_compositional(
                first_k_spec, agreed_execution, subsets=[violating_subset]
            ),
            check_content_neutral(first_k_spec, agreed_execution),
            "drop the agreed first message",
        )
    )

    # SA-tagged: renaming plain contents into SA(ksa, v) breaks it.
    sa_spec = SaTaggedBroadcastSpec(2)
    plain_execution = solo_first_execution(4)
    table.append(
        MatrixRow(
            sa_spec,
            check_compositional(sa_spec, plain_execution, max_cases=256),
            check_content_neutral(
                sa_spec,
                plain_execution,
                renamings=[sa_typed_renaming(plain_execution)],
            ),
            "rename plain → SA-typed contents",
        )
    )

    # Generic Broadcast: renaming commuting contents into conflicting
    # writes on one key breaks it (the paper's other §3.2 example).
    generic_spec = GenericBroadcastSpec()
    table.append(
        MatrixRow(
            generic_spec,
            check_compositional(
                generic_spec, plain_execution, max_cases=256
            ),
            check_content_neutral(
                generic_spec,
                plain_execution,
                renamings=[generic_conflict_renaming(plain_execution)],
            ),
            "rename commuting → conflicting commands",
        )
    )
    return table


def run() -> str:
    header = (
        "Experiment S1 — symmetry matrix (Definitions 2-3) for the "
        "broadcast-abstraction catalogue:\n"
    )
    return header + ascii_table(HEADERS, (row.cells() for row in rows()))


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()

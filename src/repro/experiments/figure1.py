"""Experiment F1 — regenerate Figure 1.

The paper's only figure illustrates the adversarial execution
``α_{k,N,B,B}`` for k = 3 and N = 2: sequential sync-broadcast phases,
withheld point-to-point messages, per-process k-SA decisions with the
forced copy at ``p_{k+1}``, and the final N messages of each process in
grey boxes.  This experiment runs Algorithm 1 with the same parameters
against a concrete B and renders the resulting schedule, then verifies the
figure's caption claims mechanically:

* the execution is admitted by ``CAMP_{k+1}[k-SA]`` (Lemmas 1–8);
* the grey-box messages form an N-solo witness (Definition 5 / Lemma 10).

Run as a script::

    python -m repro.experiments.figure1 [k] [N] [algorithm]
"""

from __future__ import annotations

import sys

from ..adversary import adversarial_scheduler, check_all_lemmas
from ..analysis.report import render_figure1
from .harness import KSA_ALGORITHMS, algorithm_factory

__all__ = ["run", "main"]


def run(k: int = 3, n_value: int = 2, algorithm: str = "first-k") -> str:
    """Produce the Figure 1 reproduction for one parameterization."""
    algorithm_class = KSA_ALGORITHMS[algorithm]
    result = adversarial_scheduler(
        k, n_value, algorithm_factory(algorithm_class)
    )
    reports = check_all_lemmas(result)
    lines = [
        render_figure1(result),
        "",
        f"B under attack: {algorithm_class.__name__} "
        f"(implemented in CAMP_{k + 1}[{k}-SA])",
        "caption claims, checked:",
    ]
    lines.extend(f"  {report}" for report in reports)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    k = int(argv[0]) if len(argv) > 0 else 3
    n_value = int(argv[1]) if len(argv) > 1 else 2
    algorithm = argv[2] if len(argv) > 2 else "first-k"
    print(run(k, n_value, algorithm))


if __name__ == "__main__":
    main()

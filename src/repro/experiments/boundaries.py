"""Experiment B1 — the boundary cases k = 1 and k = n (Section 4 opening).

* **k = 1**: Total-Order Broadcast characterizes consensus.  Both
  reductions run on the simulator: Total-Order Broadcast is implemented
  from consensus oracles
  (:class:`~repro.broadcasts.total_order.TotalOrderBroadcast`), and
  consensus is solved over it by deciding the first TO-delivered proposal
  — across seeds and crash schedules, all deciders agree on a single
  proposed value and the produced executions satisfy the Total-Order
  specification.

* **k = n**: n-set agreement is solved with zero communication (decide
  your own value), matching Send-To-All Broadcast's zero ordering power.

Run as a script::

    python -m repro.experiments.boundaries
"""

from __future__ import annotations

from typing import Sequence

from ..agreement import solve_agreement_with_broadcast, solve_nsa_trivially
from ..analysis.report import ascii_table
from ..broadcasts import TotalOrderBroadcast
from ..runtime.crash import CrashSchedule
from ..specs import TotalOrderBroadcastSpec

__all__ = ["consensus_rows", "trivial_rows", "run", "main"]

CONSENSUS_HEADERS = (
    "n",
    "seed",
    "crashes",
    "decisions",
    "distinct",
    "consensus",
    "TO spec",
)

TRIVIAL_HEADERS = ("n", "proposals", "decisions", "distinct ≤ n")


def consensus_rows(
    sizes: Sequence[int] = (3, 4, 5),
    seeds: Sequence[int] = (0, 1, 2),
) -> list[tuple]:
    """Consensus via Total-Order Broadcast, with and without crashes."""
    table: list[tuple] = []
    for n in sizes:
        for seed in seeds:
            for crashes in (
                CrashSchedule.none(),
                CrashSchedule({n - 1: 5}),
            ):
                outcome = solve_agreement_with_broadcast(
                    n,
                    lambda pid, size: TotalOrderBroadcast(pid, size),
                    {p: f"v{p}" for p in range(n)},
                    k=1,
                    seed=seed,
                    crash_schedule=crashes,
                )
                beta = (
                    outcome.simulation.execution.broadcast_projection()
                )
                verdict = TotalOrderBroadcastSpec().admits(
                    beta, assume_complete=False
                )
                distinct = len(outcome.distinct)
                table.append(
                    (
                        n,
                        seed,
                        len(crashes.faulty()),
                        dict(sorted(outcome.decisions.items())),
                        distinct,
                        "✓" if distinct <= 1 else "✗",
                        "✓" if verdict.admitted else "✗",
                    )
                )
    return table


PAXOS_HEADERS = (
    "n",
    "seed",
    "Ω stabilizes",
    "crashes",
    "decided",
    "distinct",
    "consensus",
)


def paxos_rows(
    sizes: Sequence[int] = (3, 5),
    seeds: Sequence[int] = (0, 1),
) -> list[tuple]:
    """Consensus from scratch: Paxos in CAMP_n[Ω] with a majority.

    Complements the oracle-backed Total-Order rows: here consensus is a
    real message-passing protocol, live once Ω stabilizes.
    """
    from ..agreement.paxos import PaxosProcess
    from ..detectors import Clock, OmegaOracle
    from ..registers import ServiceSimulator
    from ..runtime.service import Invocation

    table: list[tuple] = []
    for n in sizes:
        for seed in seeds:
            for stabilize, crashes in ((0, CrashSchedule.none()),
                                       (120, CrashSchedule({0: 40}))):
                clock = Clock()
                omega = OmegaOracle(
                    n, crashes, clock, stabilize_at=stabilize
                )
                simulator = ServiceSimulator(
                    n,
                    lambda pid, size: PaxosProcess(pid, size, omega),
                    seed=seed,
                    clock=clock,
                )
                outcome = simulator.run(
                    {
                        p: [Invocation("propose", "slot", f"v{p}")]
                        for p in range(n)
                    },
                    crash_schedule=crashes,
                    max_steps=80_000,
                )
                decisions = {
                    record.process: record.result
                    for record in outcome.history.complete()
                }
                distinct = len(set(decisions.values()))
                table.append(
                    (
                        n,
                        seed,
                        stabilize,
                        len(crashes.faulty()),
                        len(decisions),
                        distinct,
                        "✓" if distinct == 1 else "✗",
                    )
                )
    return table


def trivial_rows(sizes: Sequence[int] = (2, 4, 8)) -> list[tuple]:
    """k = n: agreement for free."""
    table: list[tuple] = []
    for n in sizes:
        proposals = {p: f"v{p}" for p in range(n)}
        decisions = solve_nsa_trivially(proposals)
        table.append(
            (
                n,
                len(proposals),
                len(decisions),
                "✓" if len(set(decisions.values())) <= n else "✗",
            )
        )
    return table


def run() -> str:
    parts = [
        "Experiment B1 — boundary case k = 1: consensus ⇔ Total-Order "
        "Broadcast (both reductions, crash-prone runs):\n",
        ascii_table(CONSENSUS_HEADERS, consensus_rows()),
        "",
        "Consensus from scratch — Paxos in CAMP_n[Ω] with a majority "
        "(live once Ω stabilizes, safe always):\n",
        ascii_table(PAXOS_HEADERS, paxos_rows()),
        "",
        "Boundary case k = n: n-set agreement without communication "
        "(equivalent to Send-To-All Broadcast):\n",
        ascii_table(TRIVIAL_HEADERS, trivial_rows()),
    ]
    return "\n".join(parts)


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()

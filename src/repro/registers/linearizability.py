"""Linearizability checking for register histories.

A register history is linearizable if there is a total order of its
operations that (1) extends real-time precedence (an operation that
responded before another was invoked comes first) and (2) is a legal
sequential register behaviour: every read returns the value of the
latest preceding write, or the initial value if none.

The checker is an exhaustive backtracking search over the per-register
subhistory (registers are independent objects, so each is checked
separately).  Exponential in the worst case, comfortably fast for the
test-scale histories produced here; incomplete *pending* writes are
treated as possibly-effective (they may be linearized anywhere after
their invocation or dropped), the standard completion rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from .history import History, OperationRecord

__all__ = ["LinearizabilityReport", "check_linearizable"]


@dataclass
class LinearizabilityReport:
    """Per-register verdicts plus a witness order when one exists."""

    verdicts: dict[str, bool] = field(default_factory=dict)
    witnesses: dict[str, tuple[int, ...]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.verdicts.values())

    def __str__(self) -> str:
        parts = [
            f"{target}: {'linearizable' if verdict else 'NOT linearizable'}"
            for target, verdict in sorted(self.verdicts.items())
        ]
        return "; ".join(parts) if parts else "empty history"


def _is_legal_extension(
    sequence: list[OperationRecord],
    candidate: OperationRecord,
    initial: Hashable,
) -> bool:
    """Would appending ``candidate`` keep the sequence register-legal?"""
    if candidate.operation != "read":
        return True
    current = initial
    for record in sequence:
        if record.operation == "write":
            current = record.argument
    return candidate.result == current


def _search(
    remaining: list[OperationRecord],
    sequence: list[OperationRecord],
    initial: Hashable,
) -> list[OperationRecord] | None:
    if not remaining:
        return list(sequence)
    # candidates: minimal w.r.t. real-time precedence among remaining
    for index, candidate in enumerate(remaining):
        if any(
            other.precedes(candidate)
            for other in remaining
            if other is not candidate
        ):
            continue
        # pending operations may also be dropped entirely (they might
        # never have taken effect); completed ones must appear.
        rest = remaining[:index] + remaining[index + 1:]
        if _is_legal_extension(sequence, candidate, initial):
            sequence.append(candidate)
            found = _search(rest, sequence, initial)
            if found is not None:
                return found
            sequence.pop()
        if not candidate.complete:
            dropped = _search(rest, sequence, initial)
            if dropped is not None:
                return dropped
    return None


def check_linearizable(
    history: History, *, initial: Hashable = 0
) -> LinearizabilityReport:
    """Check each register's subhistory for linearizability.

    ``initial`` is the value reads may return before any write is
    linearized.  Completed operations must all be linearized; pending
    ones may take effect or be dropped.
    """
    report = LinearizabilityReport()
    for target in history.targets():
        records = history.on_target(target)
        witness = _search(list(records), [], initial)
        report.verdicts[target] = witness is not None
        if witness is not None:
            report.witnesses[target] = tuple(r.op_id for r in witness)
    return report

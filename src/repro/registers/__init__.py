"""Shared-memory emulation: the other side of the paper's §1.3 contrast.

The paper's impossibility hinges on the divide between shared memory and
message passing: k-BO Broadcast is equivalent to k-SA *given registers*,
and k-SA (k > 1) cannot provide them.  This subpackage supplies the
register side:

* :mod:`repro.registers.abd` — the ABD majority-quorum atomic register
  emulation (needs t < n/2; the tests show exactly how it blocks without
  a majority, which is why the paper's wait-free model has no registers);
* :mod:`repro.registers.history` / :mod:`repro.registers.linearizability`
  — operation histories with real-time precedence and an exact
  linearizability checker;
* :mod:`repro.registers.simulator` — the request/response counterpart of
  the broadcast simulator.
"""

from .abd import AbdRegisterProcess, RegularRegisterProcess, Timestamp
from .history import History, OperationRecord
from .linearizability import LinearizabilityReport, check_linearizable
from .simulator import ServiceRun, ServiceSimulator

__all__ = [
    "AbdRegisterProcess",
    "RegularRegisterProcess",
    "History",
    "LinearizabilityReport",
    "OperationRecord",
    "ServiceRun",
    "ServiceSimulator",
    "Timestamp",
]

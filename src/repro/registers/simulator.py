"""The service simulator: seeded runs of request/response emulations.

Mirrors :class:`repro.runtime.simulator.Simulator` for
:class:`~repro.runtime.service.ServiceProcess` algorithms: each process
executes a script of operation invocations, the scheduler chooses among
enabled events (local steps, receptions, next invocations) under a
pluggable policy, crashes are injected deterministically, and the run
produces both a CAMP execution trace and an operation
:class:`~repro.registers.history.History` for the linearizability
checker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..core.execution import Execution
from ..runtime.crash import CrashSchedule
from ..runtime.policies import SchedulingPolicy, UniformPolicy
from ..runtime.network import Network
from ..runtime.process import Blocked, LocalStep, SendStep
from ..runtime.service import (
    Invocation,
    ResponseStep,
    ServiceProcess,
    ServiceRuntime,
)
from ..runtime.trace import TraceRecorder
from .history import History

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..detectors.oracles import Clock

__all__ = ["ServiceRun", "ServiceSimulator"]

ServiceFactory = Callable[[int, int], ServiceProcess]


@dataclass
class ServiceRun:
    """Everything observable after one service-simulation run."""

    execution: Execution
    history: History
    quiescent: bool
    steps_taken: int
    blocked: Mapping[int, str] = field(default_factory=dict)


class ServiceSimulator:
    """Runs a request/response emulation under seeded asynchrony."""

    def __init__(
        self,
        n: int,
        service_factory: ServiceFactory,
        *,
        seed: int = 0,
        scheduling_policy: SchedulingPolicy | None = None,
        clock: "Clock | None" = None,
    ) -> None:
        self.n = n
        self.service_factory = service_factory
        self.seed = seed
        self.scheduling_policy = scheduling_policy or UniformPolicy()
        #: Optional shared clock ticked with the scheduler step counter,
        #: the time source of failure-detector oracles.
        self.clock = clock

    def run(
        self,
        scripts: Mapping[int, Sequence[Invocation]],
        *,
        crash_schedule: CrashSchedule | None = None,
        max_steps: int = 100_000,
    ) -> ServiceRun:
        rng = random.Random(self.seed)
        crashes = crash_schedule or CrashSchedule.none()
        runtimes = {
            p: ServiceRuntime(self.service_factory(p, self.n))
            for p in range(self.n)
        }
        network = Network()
        trace = TraceRecorder(self.n)
        history = History()
        remaining = {p: list(scripts.get(p, ())) for p in range(self.n)}
        open_records: dict[int, object] = {}
        alive = set(range(self.n))

        for p in sorted(crashes.initially):
            trace.crash(p)
            alive.discard(p)

        steps = 0
        while steps < max_steps:
            if self.clock is not None:
                self.clock.tick(steps)
            for p in sorted(alive):
                if crashes.due(p, steps):
                    trace.crash(p)
                    alive.discard(p)

            choices = self._enabled_choices(
                alive, runtimes, network, remaining
            )
            if not choices:
                break
            kind, payload = self.scheduling_policy.select(
                choices, rng, steps
            )
            steps += 1
            if kind == "local":
                self._take_local_step(
                    payload, runtimes[payload], trace, network,
                    open_records, steps,
                )
            elif kind == "recv":
                item = payload
                network.receive(item.p2p)
                trace.receive(item.receiver, item.p2p, item.payload)
                runtimes[item.receiver].inject_receive(
                    item.p2p, item.payload
                )
            else:  # "invoke"
                p = payload
                invocation = remaining[p].pop(0)
                runtimes[p].invoke(invocation)
                open_records[p] = history.begin(
                    p,
                    invocation.operation,
                    invocation.target,
                    invocation.argument,
                    at=steps,
                )
                trace.local(
                    p,
                    f"invoke {invocation.operation}({invocation.argument!r})"
                    f" on {invocation.target}",
                )

        blocked = {}
        for p in sorted(alive):
            runtime = runtimes[p]
            if runtime.busy and not runtime.has_enabled_step():
                blocked[p] = runtime.waiting_reason or "operation waiting"
        quiescent = not self._enabled_choices(
            alive, runtimes, network, remaining
        )
        return ServiceRun(
            execution=trace.execution(),
            history=history,
            quiescent=quiescent,
            steps_taken=steps,
            blocked=blocked,
        )

    # ------------------------------------------------------------------

    def _enabled_choices(self, alive, runtimes, network, remaining):
        choices = []
        for p in sorted(alive):
            runtime = runtimes[p]
            if runtime.has_enabled_step():
                choices.append(("local", p))
            if remaining[p] and not runtime.busy:
                choices.append(("invoke", p))
        for item in network.deliverable(alive):
            choices.append(("recv", item))
        return choices

    def _take_local_step(
        self, p, runtime, trace, network, open_records, now
    ) -> None:
        outcome = runtime.next_step()
        if isinstance(outcome, SendStep):
            trace.send(p, outcome.p2p, outcome.payload)
            network.send(outcome.p2p, outcome.payload)
        elif isinstance(outcome, ResponseStep):
            record = open_records.pop(p, None)
            if record is not None:
                record.responded_at = now
                record.result = outcome.result
            trace.local(
                p,
                f"response {outcome.invocation.operation} -> "
                f"{outcome.result!r}",
            )
        elif isinstance(outcome, LocalStep):
            trace.local(p, outcome.label)
        # Blocked / Idle: an empty handler drained itself, nothing to record

"""Operation histories: invocations, responses, and real-time precedence.

A history records, for each completed (or pending) operation, the global
scheduler times of its invocation and response.  Operation ``a``
*precedes* ``b`` when ``a`` responded before ``b`` was invoked — the
partial order linearizability must extend.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterator

__all__ = ["OperationRecord", "History"]


@dataclass
class OperationRecord:
    """One operation's lifetime within a run."""

    op_id: int
    process: int
    operation: str
    target: str
    argument: Hashable
    invoked_at: int
    responded_at: int | None = None
    result: Hashable = None

    @property
    def complete(self) -> bool:
        return self.responded_at is not None

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time precedence: this responded before ``other`` began."""
        return (
            self.responded_at is not None
            and self.responded_at < other.invoked_at
        )

    def __str__(self) -> str:
        span = (
            f"[{self.invoked_at},{self.responded_at}]"
            if self.complete
            else f"[{self.invoked_at},…"
        )
        arg = "" if self.argument is None else repr(self.argument)
        result = "" if self.result is None else f" -> {self.result!r}"
        return (
            f"p{self.process}.{self.operation}({arg}) on "
            f"{self.target}{result} {span}"
        )


class History:
    """A mutable collection of operation records, one run's history."""

    def __init__(self) -> None:
        self._records: list[OperationRecord] = []
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[OperationRecord]:
        return iter(self._records)

    def begin(
        self,
        process: int,
        operation: str,
        target: str,
        argument: Hashable,
        at: int,
    ) -> OperationRecord:
        record = OperationRecord(
            op_id=next(self._ids),
            process=process,
            operation=operation,
            target=target,
            argument=argument,
            invoked_at=at,
        )
        self._records.append(record)
        return record

    def complete(self) -> list[OperationRecord]:
        """Only the operations that responded."""
        return [r for r in self._records if r.complete]

    def pending(self) -> list[OperationRecord]:
        """Operations that never responded (their process crashed/stalled)."""
        return [r for r in self._records if not r.complete]

    def on_target(self, target: str) -> list[OperationRecord]:
        """The subhistory of one register/object."""
        return [r for r in self._records if r.target == target]

    def targets(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.target, None)
        return list(seen)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._records)

"""ABD: atomic registers from majority quorums (Attiya, Bar-Noy, Dolev).

The canonical emulation of multi-writer multi-reader atomic read/write
registers in a crash-prone asynchronous message-passing system with a
**majority of correct processes** (t < n/2) — the construction behind
the paper's §1.3 observation that consensus-free shared memory exists in
message passing *only* under that assumption, while the paper's own
model is wait-free (t = n - 1), where registers are out of reach (as
experiment M1 shows from the broadcast side).

Protocol (per register, timestamps are ``(counter, writer_pid)`` pairs):

* ``write(v)``: query a majority for their timestamps; pick a timestamp
  greater than all reported; store-broadcast ``(ts, v)``; return once a
  majority acknowledged.
* ``read()``: query a majority for their ``(ts, v)`` pairs; select the
  largest; **write it back** to a majority (the famous second phase that
  makes reads atomic rather than merely regular); return its value.

Each phase tags its messages with a fresh request id, so stale replies
from earlier phases are ignored.  Liveness requires only a majority of
correct processes: the waits are on quorum counters, and the simulator's
blocked-process diagnostics show exactly which waits starve when the
majority assumption is broken (see the tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator

from ..runtime.effects import Effect, Wait
from ..runtime.service import Invocation, ServiceProcess

__all__ = ["Timestamp", "AbdRegisterProcess"]


@dataclass(frozen=True, order=True)
class Timestamp:
    """A totally ordered write timestamp: (counter, writer pid)."""

    counter: int
    writer: int

    def __str__(self) -> str:
        return f"{self.counter}.{self.writer}"


_INITIAL = Timestamp(0, -1)


class AbdRegisterProcess(ServiceProcess):
    """One process of the ABD multi-register emulation.

    Operations: ``Invocation("write", register, value)`` and
    ``Invocation("read", register)``; ``initial`` is the value reads
    return before any write is applied.
    """

    def __init__(self, pid: int, n: int, *, initial: Hashable = 0) -> None:
        super().__init__(pid, n)
        self.initial = initial
        self._store: dict[str, tuple[Timestamp, Hashable]] = {}
        self._request_ids = itertools.count()
        self._ts_replies: dict[int, list[Timestamp]] = {}
        self._value_replies: dict[int, list[tuple[Timestamp, Hashable]]] = {}
        self._write_acks: dict[int, int] = {}

    # -- local register state --------------------------------------------

    def _current(self, register: str) -> tuple[Timestamp, Hashable]:
        return self._store.get(register, (_INITIAL, self.initial))

    def _apply(
        self, register: str, ts: Timestamp, value: Hashable
    ) -> None:
        if ts > self._current(register)[0]:
            self._store[register] = (ts, value)

    @property
    def _majority(self) -> int:
        return self.n // 2 + 1

    # -- quorum phases -----------------------------------------------------

    def _query_timestamps(self, register: str) -> Iterator[Effect]:
        rid = next(self._request_ids)
        self._ts_replies[rid] = []
        yield from self.send_to_all(("QUERY_TS", rid, register))
        yield Wait(
            lambda: len(self._ts_replies[rid]) >= self._majority,
            f"timestamp quorum for {register}",
        )
        return rid

    def _query_values(self, register: str) -> Iterator[Effect]:
        rid = next(self._request_ids)
        self._value_replies[rid] = []
        yield from self.send_to_all(("QUERY_VAL", rid, register))
        yield Wait(
            lambda: len(self._value_replies[rid]) >= self._majority,
            f"value quorum for {register}",
        )
        return rid

    def _store_phase(
        self, register: str, ts: Timestamp, value: Hashable
    ) -> Iterator[Effect]:
        rid = next(self._request_ids)
        self._write_acks[rid] = 0
        yield from self.send_to_all(("STORE", rid, register, ts, value))
        yield Wait(
            lambda: self._write_acks[rid] >= self._majority,
            f"store quorum for {register}",
        )

    # -- the operations ------------------------------------------------------

    def on_invoke(self, invocation: Invocation) -> Iterator[Effect]:
        register = invocation.target
        if invocation.operation == "write":
            rid = yield from self._query_timestamps(register)
            highest = max(
                self._ts_replies[rid], default=_INITIAL
            )
            ts = Timestamp(highest.counter + 1, self.pid)
            yield from self._store_phase(register, ts, invocation.argument)
            return "ok"
        if invocation.operation == "read":
            rid = yield from self._query_values(register)
            ts, value = max(
                self._value_replies[rid],
                key=lambda pair: pair[0],
                default=self._current(register),
            )
            # write-back: later reads must not see an older value
            yield from self._store_phase(register, ts, value)
            return value
        raise ValueError(f"unknown operation {invocation.operation!r}")

    # -- the server side -----------------------------------------------------

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        kind = payload[0]
        if kind == "QUERY_TS":
            _, rid, register = payload
            ts, _value = self._current(register)
            yield from self._reply(sender, ("REPLY_TS", rid, ts))
        elif kind == "QUERY_VAL":
            _, rid, register = payload
            ts, value = self._current(register)
            yield from self._reply(sender, ("REPLY_VAL", rid, ts, value))
        elif kind == "STORE":
            _, rid, register, ts, value = payload
            self._apply(register, ts, value)
            yield from self._reply(sender, ("STORE_ACK", rid))
        elif kind == "REPLY_TS":
            _, rid, ts = payload
            if rid in self._ts_replies:
                self._ts_replies[rid].append(ts)
        elif kind == "REPLY_VAL":
            _, rid, ts, value = payload
            if rid in self._value_replies:
                self._value_replies[rid].append((ts, value))
        elif kind == "STORE_ACK":
            _, rid = payload
            if rid in self._write_acks:
                self._write_acks[rid] += 1

    def _reply(self, dest: int, payload: Hashable) -> Iterator[Effect]:
        from ..runtime.effects import Send

        yield Send(dest, payload)


class RegularRegisterProcess(AbdRegisterProcess):
    """ABD **without** the read write-back phase — only a *regular* register.

    Ablation: dropping the second phase of ``read`` admits the classical
    *new/old inversion* — a read sees a concurrent write's value, and a
    strictly later read misses it — i.e. the register is regular but not
    atomic.  The linearizability checker exhibits the difference (see
    ``tests/registers/test_abd.py``).
    """

    def on_invoke(self, invocation: Invocation) -> Iterator[Effect]:
        if invocation.operation != "read":
            result = yield from super().on_invoke(invocation)
            return result
        register = invocation.target
        rid = yield from self._query_values(register)
        ts, value = max(
            self._value_replies[rid],
            key=lambda pair: pair[0],
            default=self._current(register),
        )
        self._apply(register, ts, value)
        return value

"""The ``python -m repro.statics`` command line.

Usage::

    python -m repro.statics [paths...] [--format text|json]
                            [--check] [--golden DIR]

Walks Python files, summarizes every process class found, and prints
the inferred effect summaries.  ``--check`` exits 1 when any summary is
*open* (inference could not prove closure) — the CI self-application
step.  ``--golden DIR`` (re)writes one snapshot file per algorithm into
``DIR``, the regeneration path the golden tests hint at.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Sequence

from ..lint.engine import iter_python_files
from .analyzer import summarize_module
from .model import AlgorithmSummary
from .snapshot import render_snapshot

__all__ = ["main", "collect_summaries"]


def collect_summaries(
    paths: Sequence[Path | str],
) -> list[tuple[Path, AlgorithmSummary]]:
    """Every process-class summary under ``paths``, in stable order."""
    collected: list[tuple[Path, AlgorithmSummary]] = []
    for path in iter_python_files(paths):
        try:
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        except SyntaxError:
            continue  # the linter reports unparseable files (REP000)
        for summary in summarize_module(tree):
            collected.append((path, summary))
    collected.sort(key=lambda item: (str(item[0]), item[1].qualname))
    return collected


def _render_text(collected: list[tuple[Path, AlgorithmSummary]]) -> str:
    lines: list[str] = []
    for path, summary in collected:
        state = "closed" if summary.closed else "OPEN"
        lines.append(f"{path}: {summary.qualname} [{summary.kind}] {state}")
        for name, handler in summary.handlers:
            effects = []
            if handler.sends:
                effects.append(f"sends={{{', '.join(sorted(handler.sends))}}}")
            if handler.proposes:
                effects.append("proposes")
            if handler.delivers:
                effects.append("delivers")
            if handler.waits:
                effects.append("waits")
            lines.append(
                f"  {name}: reads={{{', '.join(sorted(handler.reads))}}} "
                f"writes={{{', '.join(sorted(handler.writes))}}}"
                + (" " + " ".join(effects) if effects else "")
            )
            for reason in handler.open_reasons:
                lines.append(
                    f"    open[{reason.category}] line {reason.line}: "
                    f"{reason.message}"
                )
    open_count = sum(1 for _, s in collected if not s.closed)
    lines.append(
        f"repro.statics: {len(collected)} algorithm(s), "
        f"{open_count} open"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description=(
            "infer per-handler effect summaries for process classes "
            "(see docs/static_analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any summary is open (unproven closure)",
    )
    parser.add_argument(
        "--golden",
        metavar="DIR",
        help="write one snapshot per algorithm into DIR and exit",
    )
    args = parser.parse_args(argv)

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(missing)}", file=sys.stderr
        )
        return 2
    collected = collect_summaries(paths)

    if args.golden:
        directory = Path(args.golden)
        directory.mkdir(parents=True, exist_ok=True)
        for _, summary in collected:
            target = directory / f"{summary.qualname}.json"
            target.write_text(render_snapshot(summary), encoding="utf-8")
            print(f"wrote {target}")
        return 0

    if args.format == "json":
        document = {
            "version": 1,
            "algorithms": [
                {"path": str(path), **summary.to_jsonable()}
                for path, summary in collected
            ],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(_render_text(collected))
    if args.check:
        return 1 if any(not s.closed for _, s in collected) else 0
    return 0

"""Interprocedural effect inference over process-class handlers.

The analyzer walks the AST of a ``BroadcastProcess``/``ServiceProcess``
subclass and infers one :class:`~repro.statics.model.EffectSummary` per
step handler (``on_broadcast``, ``on_receive``, ``on_invoke``): instance
fields read and written (including mutations through aliases and helper
calls), messages emitted with their destination shape, k-SA proposals,
deliveries, and ``Wait`` suspension points.  Helper methods invoked as
``self._helper(...)`` or ``yield from self._helper(...)`` are resolved
and their effects inlined, to a fixpoint under (mutual) recursion.

The inference is deliberately conservative:

* a local bound to ``self.field`` (or to any expression that reads
  instance fields) is an *alias*; mutating through it writes every field
  the right-hand side read;
* a call to a module-level function forwarding an aliased value is
  assumed to potentially mutate it;
* constructs the pass cannot account for — dynamic attribute access on
  ``self``, calls to unresolvable methods, unrecognized effect
  expressions — do not guess: they leave an :class:`OpenReason` and the
  summary is *open* (:data:`~repro.statics.model.OPAQUE`);
* state shared beyond the instance — ``global`` declarations, mutation
  of module-level objects, use of class-level mutable attributes — is a
  *static race* between handlers (:data:`~repro.statics.model.RACE`),
  because it breaks the per-process isolation that pid-disjoint
  commutation relies on.

Two entry points: :func:`summarize_algorithm` works on a live class via
``inspect`` (walking the MRO, so inherited handlers and helpers
resolve); :func:`summarize_module` works on a bare parsed module (what
the lint rules see), resolving inheritance within the module and
treating the framework base-class helpers (``send_to_all`` …) as
intrinsics.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Iterator, Mapping, Sequence

from .model import OPAQUE, RACE, AlgorithmSummary, EffectSummary, OpenReason

__all__ = [
    "HANDLER_NAMES",
    "summarize_algorithm",
    "summarize_classdef",
    "summarize_module",
]

#: The step-handler methods a summary covers, in report order.
HANDLER_NAMES = ("on_broadcast", "on_receive", "on_invoke")

#: Framework helpers (defined on the runtime base classes) with known
#: effects: value is the destination shape they emit, or ``None`` for a
#: pure read of ``pid``/``n``.
_INTRINSICS: Mapping[str, str | None] = {
    "send_to_all": "all",
    "others": None,
    "everyone": None,
    "symmetric_processes": None,
}

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

#: Builtins whose results are fresh values (no aliasing of arguments'
#: mutable structure that the algorithms' hashable payloads could carry).
_PURE_BUILTINS = frozenset(
    {
        "abs",
        "all",
        "any",
        "bool",
        "dict",
        "divmod",
        "enumerate",
        "filter",
        "float",
        "frozenset",
        "int",
        "isinstance",
        "iter",
        "len",
        "list",
        "map",
        "max",
        "min",
        "next",
        "range",
        "repr",
        "reversed",
        "set",
        "sorted",
        "str",
        "sum",
        "tuple",
        "zip",
    }
)

#: Dynamic-access builtins that defeat inference when applied to ``self``.
_DYNAMIC_BUILTINS = frozenset(
    {"delattr", "eval", "exec", "getattr", "setattr", "vars"}
)

_EFFECT_NAMES = frozenset(
    {"Send", "Propose", "Deliver", "DeliverSet", "Wait", "LocalNote"}
)

#: Base-class name suffixes marking per-process algorithm classes (the
#: same heuristic the lint scoping uses).
_PROCESS_BASE_SUFFIXES = ("Process", "Broadcast", "Client")

_EMPTY: frozenset[str] = frozenset()


class _Acc:
    """Mutable accumulator for one method's (or case's) effects."""

    __slots__ = (
        "reads",
        "writes",
        "sends",
        "proposes",
        "delivers",
        "waits",
        "reasons",
    )

    def __init__(self) -> None:
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.sends: set[str] = set()
        self.proposes = False
        self.delivers = False
        self.waits = False
        self.reasons: list[OpenReason] = []

    def merge(self, other: "_Acc") -> None:
        self.reads |= other.reads
        self.writes |= other.writes
        self.sends |= other.sends
        self.proposes = self.proposes or other.proposes
        self.delivers = self.delivers or other.delivers
        self.waits = self.waits or other.waits
        self.reasons.extend(other.reasons)

    def opaque(self, node: ast.AST, message: str) -> None:
        self.reasons.append(
            OpenReason(
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                OPAQUE,
                message,
            )
        )

    def race(self, node: ast.AST, message: str) -> None:
        self.reasons.append(
            OpenReason(
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                RACE,
                message,
            )
        )


def _is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _mutation_target(node: ast.AST) -> tuple[str, str] | None:
    """Resolve what a mutation of ``node`` ultimately touches.

    Returns ``("attr", name)`` for instance state, ``("name", id)`` for
    a plain local/global name, ``None`` when the chain is unresolvable.
    Walks through subscripts and call chains so
    ``self._buf.setdefault(k, []).append(x)`` resolves to ``_buf``.
    """
    while True:
        if isinstance(node, ast.Attribute):
            if _is_self(node.value):
                return ("attr", node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return ("name", node.id)
        else:
            return None


class _ClassAnalysis:
    """Shared per-class inference state: method table and memoized accs."""

    def __init__(
        self,
        methods: Mapping[str, ast.FunctionDef],
        class_attrs: Mapping[str, int],
        super_methods: Mapping[str, ast.FunctionDef] | None = None,
    ) -> None:
        self.methods = dict(methods)
        #: Resolution table for ``super().m(...)`` — the method map of
        #: the base chain, before the most-derived class's overrides.
        self.super_methods = dict(super_methods or {})
        #: Class-body attributes bound to mutable literals → def line.
        self.class_attrs = dict(class_attrs)
        self._cache: dict[str, _Acc] = {}
        self._super_cache: dict[str, _Acc] = {}
        self._in_progress: set[str] = set()

    def super_acc(self, name: str) -> _Acc | None:
        """Effects of ``super().<name>(...)``, when the base is known."""
        if name not in self.super_methods:
            return None
        cached = self._super_cache.get(name)
        if cached is not None:
            return cached
        key = f"super.{name}"
        if key in self._in_progress:
            return _Acc()
        self._in_progress.add(key)
        try:
            acc = _Acc()
            fdef = self.super_methods[name]
            frame = _Frame(self, acc, fdef)
            frame.run(fdef.body)
        finally:
            self._in_progress.discard(key)
        self._super_cache[name] = acc
        return acc

    def method_acc(self, name: str) -> _Acc:
        """The accumulated effects of ``self.<name>(...)``, memoized.

        On (mutual) recursion the in-progress frame contributes an empty
        delta — sound, because effect sets are unions and the recursive
        body's own effects are already being collected once.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        if name in self._in_progress:
            return _Acc()
        self._in_progress.add(name)
        try:
            acc = _Acc()
            fdef = self.methods[name]
            frame = _Frame(self, acc, fdef)
            frame.run(fdef.body)
        finally:
            self._in_progress.discard(name)
        self._cache[name] = acc
        return acc


class _Frame:
    """One method body being analyzed: alias environment plus effects."""

    def __init__(
        self, analysis: _ClassAnalysis, acc: _Acc, fdef: ast.FunctionDef
    ) -> None:
        self.analysis = analysis
        self.acc = acc
        args = fdef.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        self.params = [n for n in names if n != "self"]
        #: ``sender`` parameter of ``on_receive``-shaped handlers, if any.
        self.sender_param = (
            self.params[1]
            if fdef.name == "on_receive" and len(self.params) >= 2
            else None
        )
        #: Local name → instance attrs its value may reach (aliases).
        self.aliases: dict[str, frozenset[str]] = {}
        #: Names bound in this scope (params and assignments).
        self.bound: set[str] = set(self.params)
        #: Loop variables ranging over a known destination shape.
        self.dest_shapes: dict[str, str] = {}

    # -- statements ------------------------------------------------------

    def run(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, ast.Assign):
            alias = self.expr(node.value)
            for target in node.targets:
                self._bind(target, alias, node)
        elif isinstance(node, ast.AnnAssign):
            alias = self.expr(node.value) if node.value else _EMPTY
            self._bind(node.target, alias, node)
        elif isinstance(node, ast.AugAssign):
            self.expr(node.value)
            self._mutate(node.target, node)
            if isinstance(node.target, ast.Attribute) and _is_self(
                node.target.value
            ):
                self._read(node.target.attr)
        elif isinstance(node, ast.For):
            iter_alias = self.expr(node.iter)
            shape = self._loop_shape(node.iter)
            if shape is not None and isinstance(node.target, ast.Name):
                self.dest_shapes[node.target.id] = shape
            self._bind(node.target, iter_alias, node)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.While):
            self.expr(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.With):
            for item in node.items:
                alias = self.expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, alias, node)
            self.run(node.body)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.expr(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            self.acc.race(
                node,
                "handler reaches shared state through a "
                f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                " declaration",
            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._mutate(target, node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function (e.g. a guard factory): analyze its body
            # in this frame — reads/mutations it performs are attributed
            # to the enclosing handler, which is the conservative call.
            self.bound.add(node.name)
            self.run(node.body)
        elif isinstance(node, ast.ClassDef):
            self.acc.opaque(node, "nested class definition defeats inference")
        # Pass/Break/Continue/Import…: no effect on the summary.

    # -- binding and mutation --------------------------------------------

    def _bind(
        self, target: ast.expr, alias: frozenset[str], node: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            self.bound.add(target.id)
            self.aliases[target.id] = alias
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(
                    elt.value if isinstance(elt, ast.Starred) else elt,
                    alias,
                    node,
                )
        elif isinstance(target, ast.Starred):
            self._bind(target.value, alias, node)
        else:
            # ``self.x = …`` / ``alias[k] = …`` / ``alias.f = …``
            self._mutate(target, node)

    def _mutate(self, target: ast.expr, node: ast.AST) -> None:
        """Record a write through ``target`` (assignment or method)."""
        # Visit subscript indices etc. for reads, without re-binding.
        for child in ast.walk(target):
            if (
                isinstance(child, ast.Attribute)
                and _is_self(child.value)
                and isinstance(child.ctx, ast.Load)
            ):
                self._read(child.attr)
        resolved = _mutation_target(target)
        if resolved is None:
            self.acc.opaque(
                node, "mutation through an unresolvable expression"
            )
            return
        kind, name = resolved
        if kind == "attr":
            self._write(name, node)
            return
        if name == "self":
            self.acc.opaque(node, "unresolvable mutation of self")
            return
        if name in self.bound:
            attrs = self.aliases.get(name, _EMPTY)
            for attr in attrs:
                self._write(attr, node)
            return
        self.acc.race(
            node,
            f"mutation of '{name}', which is not bound in this handler — "
            f"module-level state is shared across processes",
        )

    def _read(self, attr: str) -> None:
        self.acc.reads.add(attr)

    def _write(self, attr: str, node: ast.AST) -> None:
        self.acc.writes.add(attr)
        self.acc.reads.add(attr)

    # -- expressions -----------------------------------------------------

    def expr(self, node: ast.expr | None) -> frozenset[str]:
        """Record the node's effects; return the attrs its value aliases."""
        if node is None:
            return _EMPTY
        if isinstance(node, (ast.Yield,)):
            if node.value is not None:
                self._effect(node.value)
            return _EMPTY
        if isinstance(node, ast.YieldFrom):
            self._yield_from(node.value)
            return _EMPTY
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            if _is_self(node.value):
                if isinstance(node.ctx, ast.Load):
                    self._read(node.attr)
                return frozenset({node.attr})
            return self.expr(node.value)
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, _EMPTY)
        if isinstance(node, ast.Subscript):
            self.expr(node.slice)
            return self.expr(node.value)
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            return self.expr(node.body) | self.expr(node.orelse)
        if isinstance(node, ast.Lambda):
            self.expr(node.body)
            return _EMPTY
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            alias = _EMPTY
            for elt in node.elts:
                alias |= self.expr(elt)
            return alias
        if isinstance(node, ast.Dict):
            alias = _EMPTY
            for key in node.keys:
                if key is not None:
                    self.expr(key)
            for value in node.values:
                alias |= self.expr(value)
            return alias
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            alias = _EMPTY
            for comp in node.generators:
                alias |= self.expr(comp.iter)
                self._bind(comp.target, _EMPTY, ast.Pass())
                for cond in comp.ifs:
                    self.expr(cond)
            if isinstance(node, ast.DictComp):
                self.expr(node.key)
                alias |= self.expr(node.value)
            else:
                alias |= self.expr(node.elt)
            return alias
        if isinstance(node, ast.NamedExpr):
            alias = self.expr(node.value)
            self._bind(node.target, alias, ast.Pass())
            return alias
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, ast.BoolOp):
            alias = _EMPTY
            for value in node.values:
                alias |= self.expr(value)
            return alias
        if isinstance(node, ast.BinOp):
            return self.expr(node.left) | self.expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.Compare):
            self.expr(node.left)
            for comp in node.comparators:
                self.expr(comp)
            return _EMPTY
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self.expr(value)
            return _EMPTY
        if isinstance(node, ast.FormattedValue):
            self.expr(node.value)
            return _EMPTY
        if isinstance(node, ast.Slice):
            self.expr(node.lower)
            self.expr(node.upper)
            self.expr(node.step)
            return _EMPTY
        # Constants and anything valueless.
        return _EMPTY

    # -- calls -----------------------------------------------------------

    @staticmethod
    def _is_super_call(func: ast.expr) -> bool:
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        )

    def _super_method_call(self, node: ast.Call, name: str) -> frozenset[str]:
        self._visit_args(node)
        helper = self.analysis.super_acc(name)
        if helper is None:
            self.acc.opaque(
                node,
                f"call to super().{name}() with no analyzed base "
                f"definition",
            )
            return _EMPTY
        self.acc.merge(helper)
        return frozenset(helper.reads | helper.writes)

    def _call(self, node: ast.Call) -> frozenset[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and _is_self(func.value):
            return self._self_method_call(node, func.attr)
        if self._is_super_call(func):
            assert isinstance(func, ast.Attribute)
            return self._super_method_call(node, func.attr)
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            self._mutate(func.value, node)
            self._visit_args(node)
            return _EMPTY
        if isinstance(func, ast.Name):
            return self._function_call(node, func.id)
        # Method call on a value: reads only; result may alias receiver.
        alias = self.expr(func) if not isinstance(func, ast.Name) else _EMPTY
        return alias | self._visit_args(node)

    def _self_method_call(self, node: ast.Call, name: str) -> frozenset[str]:
        self._visit_args(node)
        if name in self.analysis.methods:
            helper = self.analysis.method_acc(name)
            self.acc.merge(helper)
            return frozenset(helper.reads | helper.writes)
        intrinsic_sentinel = object()
        shape = _INTRINSICS.get(name, intrinsic_sentinel)
        if shape is not intrinsic_sentinel:
            if shape is not None:
                self.acc.sends.add(shape)
            return _EMPTY
        if name in _MUTATORS:
            self.acc.opaque(
                node, f"unresolvable mutation via self.{name}(...)"
            )
            return _EMPTY
        self.acc.opaque(
            node,
            f"call to self.{name}() which is not defined on this class "
            f"or its analyzed bases",
        )
        return _EMPTY

    def _function_call(self, node: ast.Call, name: str) -> frozenset[str]:
        if name in _DYNAMIC_BUILTINS:
            if any(_is_self(arg) for arg in node.args):
                self.acc.opaque(
                    node,
                    f"dynamic attribute access {name}(self, ...) defeats "
                    f"inference",
                )
            self._visit_args(node)
            return _EMPTY
        if name in _EFFECT_NAMES:
            # Effect constructed outside a yield: account it anyway (the
            # value is presumably yielded through a variable later, which
            # itself reports as opaque — this keeps the envelope honest).
            self._effect(node, constructed_only=True)
            return _EMPTY
        arg_alias = self._visit_args(node)
        if any(_is_self(arg) for arg in node.args):
            self.acc.opaque(
                node, f"self escapes into {name}(...): effects unknown"
            )
            return _EMPTY
        if name in _PURE_BUILTINS:
            return _EMPTY
        if name[:1].isupper():
            # Constructor by naming convention (Ballot, Invocation …):
            # builds a fresh value, does not mutate its arguments.
            return _EMPTY
        # Unknown module-level callable: assume it may mutate whatever
        # aliased state it received (conservative over-approximation).
        for attr in arg_alias:
            self._write(attr, node)
        return arg_alias

    def _visit_args(self, node: ast.Call) -> frozenset[str]:
        alias = _EMPTY
        for arg in node.args:
            if not _is_self(arg):
                alias |= self.expr(arg)
        for keyword in node.keywords:
            alias |= self.expr(keyword.value)
        return alias

    # -- effects ---------------------------------------------------------

    def _effect(
        self, node: ast.expr, *, constructed_only: bool = False
    ) -> None:
        """Classify one yielded (or constructed) effect expression."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, (ast.Name, ast.Attribute))
        ):
            name = (
                node.func.id
                if isinstance(node.func, ast.Name)
                else node.func.attr
            )
            if name == "Send":
                dest = node.args[0] if node.args else None
                for keyword in node.keywords:
                    if keyword.arg == "dest":
                        dest = keyword.value
                self.acc.sends.add(self._dest_shape(dest))
                self._visit_args(node)
                return
            if name == "Propose":
                self.acc.proposes = True
                self._visit_args(node)
                return
            if name in ("Deliver", "DeliverSet"):
                self.acc.delivers = True
                self._visit_args(node)
                return
            if name == "Wait":
                self.acc.waits = True
                self._visit_args(node)
                return
            if name == "LocalNote":
                self._visit_args(node)
                return
        if constructed_only:
            self.expr(node)
            return
        self.expr(node)
        self.acc.opaque(
            node,
            "yielded expression is not a recognizable effect constructor",
        )

    def _yield_from(self, node: ast.expr) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and _is_self(node.func.value)
        ):
            self._self_method_call(node, node.func.attr)
            return
        if isinstance(node, ast.Call) and self._is_super_call(node.func):
            assert isinstance(node.func, ast.Attribute)
            self._super_method_call(node, node.func.attr)
            return
        self.expr(node)
        self.acc.opaque(
            node,
            "yield from a non-method iterator: emitted effects unknown",
        )

    # -- destination shapes ----------------------------------------------

    def _loop_shape(self, iterable: ast.expr) -> str | None:
        """The destination shape a loop over ``iterable`` ranges over."""
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and _is_self(iterable.func.value)
        ):
            if iterable.func.attr == "others":
                return "others"
            if iterable.func.attr == "everyone":
                return "all"
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and len(iterable.args) == 1
            and isinstance(iterable.args[0], ast.Attribute)
            and _is_self(iterable.args[0].value)
            and iterable.args[0].attr == "n"
        ):
            return "all"
        return None

    def _dest_shape(self, dest: ast.expr | None) -> str:
        if dest is None:
            return "dynamic"
        if isinstance(dest, ast.Constant) and isinstance(dest.value, int):
            return "constant"
        if isinstance(dest, ast.Attribute) and _is_self(dest.value):
            if dest.attr == "pid":
                return "self"
        if isinstance(dest, ast.Name):
            if dest.id == self.sender_param:
                return "sender"
            shape = self.dest_shapes.get(dest.id)
            if shape is not None:
                return shape
        return "dynamic"


# ---------------------------------------------------------------------------
# Class- and module-level assembly
# ---------------------------------------------------------------------------


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("dict", "list", "set", "defaultdict", "deque")
    return False


def _class_mutable_attrs(node: ast.ClassDef) -> dict[str, int]:
    """Class-body names bound to mutable literals → definition line."""
    attrs: dict[str, int] = {}
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                attrs[target.id] = stmt.lineno
    return attrs


def _case_split(
    fdef: ast.FunctionDef,
) -> tuple[list[ast.stmt], list[tuple[str, list[ast.stmt]]], list[ast.stmt]]:
    """Split a tag-dispatching handler body into (prelude, cases, suffix).

    Recognizes the two payload-dispatch idioms the algorithms use —
    ``kind, … = payload`` tuple unpacking and ``kind = payload[0]`` —
    followed by a top-level ``if kind == "TAG": … elif …`` chain over
    string constants.  Returns no cases when the pattern is absent.
    """
    params = [a.arg for a in fdef.args.args if a.arg != "self"]
    if not params:
        return [], [], []
    payload = params[0]
    tag: str | None = None
    body = fdef.body
    for stmt in body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if (
            isinstance(target, ast.Tuple)
            and target.elts
            and isinstance(target.elts[0], ast.Name)
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id == payload
        ):
            tag = target.elts[0].id
            break
        if (
            isinstance(target, ast.Name)
            and isinstance(stmt.value, ast.Subscript)
            and isinstance(stmt.value.value, ast.Name)
            and stmt.value.value.id == payload
            and isinstance(stmt.value.slice, ast.Constant)
            and stmt.value.slice.value == 0
        ):
            tag = target.id
            break
    if tag is None:
        return [], [], []

    def _tag_test(test: ast.expr) -> str | None:
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == tag
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)
        ):
            return str(test.comparators[0].value)
        return None

    for index, stmt in enumerate(body):
        if not isinstance(stmt, ast.If) or _tag_test(stmt.test) is None:
            continue
        prelude = list(body[:index])
        suffix = list(body[index + 1:])
        cases: list[tuple[str, list[ast.stmt]]] = []
        chain: ast.stmt = stmt
        while isinstance(chain, ast.If):
            label = _tag_test(chain.test)
            if label is None:
                return [], [], []  # mixed chain: no refinement
            cases.append((label, chain.body))
            if len(chain.orelse) == 1 and isinstance(chain.orelse[0], ast.If):
                chain = chain.orelse[0]
            elif chain.orelse:
                cases.append(("*", chain.orelse))
                break
            else:
                break
        if len(cases) >= 2:
            return prelude, cases, suffix
        return [], [], []
    return [], [], []


def _acc_to_summary(
    name: str, acc: _Acc, cases: tuple[tuple[str, EffectSummary], ...] = ()
) -> EffectSummary:
    return EffectSummary(
        handler=name,
        reads=frozenset(acc.reads),
        writes=frozenset(acc.writes),
        sends=frozenset(acc.sends),
        proposes=acc.proposes,
        delivers=acc.delivers,
        waits=acc.waits,
        open_reasons=tuple(sorted(set(acc.reasons))),
        cases=cases,
    )


def _summarize(
    qualname: str,
    kind: str,
    methods: Mapping[str, ast.FunctionDef],
    class_attrs: Mapping[str, int],
    super_methods: Mapping[str, ast.FunctionDef] | None = None,
) -> AlgorithmSummary:
    analysis = _ClassAnalysis(methods, class_attrs, super_methods)
    instance_attrs: frozenset[str] = frozenset()
    if "__init__" in methods:
        instance_attrs = frozenset(analysis.method_acc("__init__").writes)
    shared = {
        attr: line
        for attr, line in class_attrs.items()
        if attr not in instance_attrs
    }
    handlers: list[tuple[str, EffectSummary]] = []
    for handler_name in HANDLER_NAMES:
        if handler_name not in methods:
            continue
        fdef = methods[handler_name]
        acc = analysis.method_acc(handler_name)
        for attr in sorted((acc.reads | acc.writes) & set(shared)):
            acc.race(
                fdef,
                f"handler touches class-level mutable attribute "
                f"'{attr}' (defined at line {shared[attr]}), shared "
                f"across process instances",
            )
        cases: tuple[tuple[str, EffectSummary], ...] = ()
        if handler_name == "on_receive" and not acc.reasons:
            prelude, case_bodies, suffix = _case_split(fdef)
            case_summaries: list[tuple[str, EffectSummary]] = []
            for label, case_body in case_bodies:
                case_acc = _Acc()
                frame = _Frame(analysis, case_acc, fdef)
                frame.run(prelude)
                frame.run(case_body)
                frame.run(suffix)
                case_summaries.append(
                    (label, _acc_to_summary(handler_name, case_acc))
                )
            cases = tuple(sorted(case_summaries))
        handlers.append((handler_name, _acc_to_summary(handler_name, acc, cases)))
    return AlgorithmSummary(
        qualname=qualname, kind=kind, handlers=tuple(handlers)
    )


def _looks_like_process_base(name: str | None) -> bool:
    return name is not None and name.endswith(_PROCESS_BASE_SUFFIXES)


def _base_names(node: ast.ClassDef) -> list[str]:
    """The tail name of every base: ``module.Class`` → ``Class``."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def summarize_classdef(
    node: ast.ClassDef,
    *,
    qualname: str | None = None,
    inherited: Mapping[str, ast.FunctionDef] | None = None,
    inherited_attrs: Mapping[str, int] | None = None,
) -> AlgorithmSummary:
    """Summarize one parsed class, optionally with inherited methods."""
    super_methods: dict[str, ast.FunctionDef] = dict(inherited or {})
    methods: dict[str, ast.FunctionDef] = dict(super_methods)
    class_attrs: dict[str, int] = dict(inherited_attrs or {})
    class_attrs.update(_class_mutable_attrs(node))
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef):
            methods[stmt.name] = stmt
    kind = "service" if "on_invoke" in methods else "broadcast"
    return _summarize(
        qualname or node.name, kind, methods, class_attrs, super_methods
    )


def iter_process_classdefs(
    tree: ast.Module,
) -> Iterator[tuple[ast.ClassDef, dict[str, ast.FunctionDef], dict[str, int]]]:
    """Module-level process classes with in-module inheritance resolved.

    Yields ``(classdef, inherited methods, inherited class attrs)`` for
    every class that (transitively) extends a process-shaped base — by
    the same name-suffix heuristic the lint scoping uses — resolving
    method inheritance through base classes defined in the same module.
    """
    classes = {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, ast.ClassDef)
    }

    def is_process(name: str, seen: frozenset[str]) -> bool:
        node = classes.get(name)
        if node is None or name in seen:
            return False
        for base in _base_names(node):
            if _looks_like_process_base(base):
                return True
            if is_process(base, seen | {name}):
                return True
        return False

    def collect(
        name: str,
    ) -> tuple[dict[str, ast.FunctionDef], dict[str, int]]:
        node = classes.get(name)
        if node is None:
            return {}, {}
        methods: dict[str, ast.FunctionDef] = {}
        attrs: dict[str, int] = {}
        for base in _base_names(node):
            base_methods, base_attrs = collect(base)
            methods.update(base_methods)
            attrs.update(base_attrs)
        attrs.update(_class_mutable_attrs(node))
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                methods[stmt.name] = stmt
        return methods, attrs

    for name in classes:
        if not is_process(name, frozenset()):
            continue
        node = classes[name]
        inherited_methods: dict[str, ast.FunctionDef] = {}
        inherited_attrs: dict[str, int] = {}
        for base in _base_names(node):
            base_methods, base_attrs = collect(base)
            inherited_methods.update(base_methods)
            inherited_attrs.update(base_attrs)
        own = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        if not own and not inherited_methods:
            continue
        yield node, inherited_methods, inherited_attrs


def summarize_module(tree: ast.Module) -> list[AlgorithmSummary]:
    """Summaries for every process class defined in a parsed module.

    Classes that define (or inherit, within the module) no step handler
    at all are skipped — an abstract shell carries no effects to prove.
    """
    summaries = []
    for node, inherited, inherited_attrs in iter_process_classdefs(tree):
        summary = summarize_classdef(
            node, inherited=inherited, inherited_attrs=inherited_attrs
        )
        if summary.handlers:
            summaries.append(summary)
    return summaries


def summarize_algorithm(cls: type) -> AlgorithmSummary:
    """Summarize a live process class, resolving handlers over its MRO.

    Framework base classes (anything under ``repro.runtime``) contribute
    intrinsics only; every other ancestor's source is parsed so
    inherited handlers and helpers resolve interprocedurally.  Raises
    ``OSError``/``TypeError`` when a class's source is unavailable
    (dynamically built classes) — callers wanting best-effort behavior
    catch those.
    """
    methods: dict[str, ast.FunctionDef] = {}
    super_methods: dict[str, ast.FunctionDef] = {}
    class_attrs: dict[str, int] = {}
    for klass in reversed(cls.__mro__):
        module = getattr(klass, "__module__", "") or ""
        if klass is object or module.startswith("repro.runtime"):
            continue
        if module == "abc":
            continue
        source = textwrap.dedent(inspect.getsource(klass))
        tree = ast.parse(source)
        node = tree.body[0]
        if not isinstance(node, ast.ClassDef):  # pragma: no cover
            raise TypeError(f"source of {klass!r} does not start at a class")
        if klass is not cls:
            # ``super().m(...)`` in the most-derived class resolves to
            # the base chain's view of ``m``.
            super_methods.update(
                {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                }
            )
        class_attrs.update(_class_mutable_attrs(node))
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                methods[stmt.name] = stmt
    kind = "service" if hasattr(cls, "on_invoke") else "broadcast"
    return _summarize(
        cls.__qualname__, kind, methods, class_attrs, super_methods
    )

"""repro.statics — static effect summaries for process-class handlers.

Infers, per handler and message type, a conservative **effect summary**
of what a :class:`~repro.runtime.process.BroadcastProcess` /
:class:`~repro.runtime.service.ServiceProcess` step handler may touch:
fields read and written, messages emitted (with destination shape), k-SA
oracle proposals, deliveries, and ``Wait`` suspension.  Three consumers:

* **lint** — REP007/REP008 (:mod:`repro.lint.rules.footprint`) surface
  static races and inference-defeating constructs;
* **sanitizer** — the simulator's ``validate_footprints=True`` mode
  asserts every recorded dynamic footprint is contained in the summary;
* **explorer** — :class:`StaticIndependence` proves commutation of
  pid-disjoint events while a crash is pending, recovering sleep-set
  pruning on the fault schedules where the recorded-footprint relation
  goes conservative (ROADMAP "raw speed" item 3).

Run ``python -m repro.statics [paths]`` to print summaries, or with
``--check`` to fail on open (unproven) summaries; see
``docs/static_analysis.md``.
"""

from __future__ import annotations

from .analyzer import (
    HANDLER_NAMES,
    summarize_algorithm,
    summarize_classdef,
    summarize_module,
)
from .independence import StaticIndependence, attributed_handlers
from .model import OPAQUE, RACE, AlgorithmSummary, EffectSummary, OpenReason
from .snapshot import load_snapshot, render_snapshot

__all__ = [
    "AlgorithmSummary",
    "EffectSummary",
    "HANDLER_NAMES",
    "OPAQUE",
    "OpenReason",
    "RACE",
    "StaticIndependence",
    "attributed_handlers",
    "load_snapshot",
    "render_snapshot",
    "summarize_algorithm",
    "summarize_classdef",
    "summarize_module",
]

"""Stable JSON snapshots of effect summaries — the golden-test format.

A snapshot is a byte-stable rendering of one
:class:`~repro.statics.model.AlgorithmSummary`: keys sorted, sets
rendered as sorted lists, a schema version pinned at the top.  The
golden tests (``tests/statics/test_golden.py``) commit one snapshot per
shipped algorithm and fail on drift, printing a regeneration hint — so
any change to either an algorithm's effects or the analyzer itself shows
up in review as a readable diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .model import AlgorithmSummary

__all__ = ["SNAPSHOT_SCHEMA", "load_snapshot", "render_snapshot"]

#: Bump when the snapshot document shape changes (goldens regenerate).
SNAPSHOT_SCHEMA = 1


def render_snapshot(summary: AlgorithmSummary) -> str:
    """The summary as a byte-stable JSON document (trailing newline)."""
    document = {"schema": SNAPSHOT_SCHEMA, **summary.to_jsonable()}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def load_snapshot(path: Path | str) -> dict[str, Any]:
    """A committed snapshot document, parsed."""
    with Path(path).open(encoding="utf-8") as handle:
        return json.load(handle)

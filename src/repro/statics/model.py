"""The effect-summary model: what a handler *may* touch, statically.

A dynamic :class:`~repro.runtime.independence.Footprint` records what one
committed scheduling event *did* touch.  An :class:`EffectSummary` is its
static counterpart: a conservative over-approximation, inferred from the
handler's AST (:mod:`repro.statics.analyzer`), of everything any
execution of the handler *could* touch — instance fields read and
written, messages emitted (with a destination *shape* rather than a
concrete pid), k-SA oracle proposals, deliveries, and whether the body
may suspend on a :class:`~repro.runtime.effects.Wait`.

A summary is **closed** when the inference accounted for every effect:
all helper calls resolved, no dynamic attribute access, no state shared
beyond the instance.  Closure is the load-bearing property — it proves
the *per-process isolation* that the recorded-footprint independence
relation silently assumes (disjoint pid sets only imply commutation when
no handler reaches state outside its own process), and it is what the
:class:`~repro.statics.independence.StaticIndependence` table requires
before proving commutation under a pending crash.  An open summary
carries :class:`OpenReason` records saying exactly where and why
inference gave up; the lint rules REP007/REP008 surface those as
findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "AlgorithmSummary",
    "EffectSummary",
    "OpenReason",
    "RACE",
    "OPAQUE",
]

#: Open-reason category: the handler reaches state shared beyond its own
#: process instance (class attribute, module global) — a *static race*
#: between handlers that breaks pid-disjoint commutation.  REP007.
RACE = "race"

#: Open-reason category: the construct defeats inference (unresolved
#: helper, dynamic attribute access, unrecognized effect expression), so
#: the summary cannot be proven complete.  REP008.
OPAQUE = "opaque"


@dataclass(frozen=True, order=True)
class OpenReason:
    """One place where inference could not close the summary."""

    line: int
    col: int
    #: :data:`RACE` or :data:`OPAQUE`.
    category: str
    message: str

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "category": self.category,
            "message": self.message,
        }


@dataclass(frozen=True)
class EffectSummary:
    """The inferred effect envelope of one handler (or one message case).

    ``sends`` holds destination *shapes*, not pids: ``"all"`` (every
    process, e.g. ``send_to_all``), ``"others"``, ``"self"``,
    ``"sender"`` (reply to the message's sender), ``"constant"`` (a
    literal pid) or ``"dynamic"`` (computed — still accounted, just not
    shaped).
    """

    handler: str
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    sends: frozenset[str] = frozenset()
    proposes: bool = False
    delivers: bool = False
    waits: bool = False
    open_reasons: tuple[OpenReason, ...] = ()
    #: Per message-type refinement, when the handler dispatches on a
    #: recognizable payload tag: ``(tag, sub-summary)`` pairs, sorted by
    #: tag.  Consumers needing soundness use the whole-handler union
    #: above; the cases exist for inspection and golden snapshots.
    cases: tuple[tuple[str, "EffectSummary"], ...] = ()

    @property
    def closed(self) -> bool:
        return not self.open_reasons

    def to_jsonable(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "handler": self.handler,
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "sends": sorted(self.sends),
            "proposes": self.proposes,
            "delivers": self.delivers,
            "waits": self.waits,
            "closed": self.closed,
        }
        if self.open_reasons:
            data["open_reasons"] = [
                r.to_jsonable() for r in sorted(self.open_reasons)
            ]
        if self.cases:
            data["cases"] = {
                tag: case.to_jsonable() for tag, case in self.cases
            }
        return data


@dataclass(frozen=True)
class AlgorithmSummary:
    """Every handler summary of one process class, plus its provenance."""

    qualname: str
    #: ``"broadcast"`` (``on_broadcast``/``on_receive``) or ``"service"``
    #: (``on_invoke``/``on_receive``).
    kind: str
    handlers: tuple[tuple[str, EffectSummary], ...] = ()

    def handler(self, name: str) -> EffectSummary | None:
        for handler_name, summary in self.handlers:
            if handler_name == name:
                return summary
        return None

    @property
    def closed(self) -> bool:
        return all(summary.closed for _, summary in self.handlers)

    def open_reasons(self) -> Iterator[tuple[str, OpenReason]]:
        """Every ``(handler name, reason)`` that keeps the summary open."""
        for handler_name, summary in self.handlers:
            for reason in summary.open_reasons:
                yield handler_name, reason

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "algorithm": self.qualname,
            "kind": self.kind,
            "closed": self.closed,
            "handlers": {
                name: summary.to_jsonable()
                for name, summary in self.handlers
            },
        }

"""Entry point for ``python -m repro.statics``."""

from __future__ import annotations

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())

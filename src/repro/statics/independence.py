"""Proven commutation from effect summaries — POR under pending crashes.

The dynamic relation (:func:`repro.runtime.independence.independent`)
used to go conservative the moment a crash was *pending*: a crash
schedule is indexed by the global decision count, so the recorded
footprint of every event carries the set of still-alive victims, and
the historical blanket (kept as :func:`repro.runtime.independence.
conservative_independent`) refused to commute anything until the
schedule had drained.  That blanket is sound but needlessly strong.
Reordering two adjacent events does **not** move the decision count at
which a pending crash fires; the injection lands on a different state
only if one of the events (a) had the injection fire adjacent to it,
(b) touched a victim's process, or (c) reached state outside its own
processes.  (a) and (b) are visible on the recorded footprints
(``crashed``, ``pids`` vs ``pending``); (c) is exactly what a
**closed** effect summary disproves statically — every handler reads
and writes its own instance fields only, emits through the effect
vocabulary only, and hides nothing from the analyzer.

This table was the first carrier of that argument.  The dynamic
relation has since become crash-aware and makes the same victim-
disjointness proof directly from the recorded footprints — because the
footprint's ``pids`` already includes every process the drain stepped,
(c) is discharged dynamically and the table's extra requirements
(closed summary, handler attribution) only narrow it.  The crash-aware
relation therefore *subsumes* :meth:`StaticIndependence.proves`; the
sleep-set engine keeps the table as a fallback refiner
(``independent(a, b) or table.proves(a, b)``) whose verdicts matter
when the engine runs with ``crash_aware=False`` — the before/after
benchmark baseline — and as an independently-derived cross-check.  The
differential tests in ``tests/runtime/test_explorer_static.py`` and
``tests/statics/test_independence.py`` execute both orders of every
statically-proven pair, compare fingerprints, and assert the
subsumption as an invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..runtime.independence import Footprint
from .analyzer import summarize_algorithm
from .model import AlgorithmSummary, EffectSummary

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.simulator import Simulator

__all__ = ["StaticIndependence", "attributed_handlers"]


def attributed_handlers(
    summary: AlgorithmSummary, kind: str
) -> tuple[EffectSummary, ...]:
    """The handlers whose code a ``kind`` scheduling event may run.

    A ``"bcast"`` event starts ``on_broadcast`` (and the drain runs its
    body up to the first suspension).  A ``"recv"`` event runs
    ``on_receive`` — and may *resume* a suspended ``on_broadcast`` /
    ``on_invoke`` operation body whose ``Wait`` guard the reception
    unblocked, so suspendable operation handlers are attributed too.  A
    ``"local"`` event (non-atomic runs only) may advance any handler.
    """
    handlers = {name: s for name, s in summary.handlers}
    if kind == "bcast":
        picked = [handlers.get("on_broadcast")]
    elif kind == "recv":
        picked = [handlers.get("on_receive")]
        for operation in ("on_broadcast", "on_invoke"):
            body = handlers.get(operation)
            if body is not None and body.waits:
                picked.append(body)
    else:
        picked = [handlers.get(name) for name in handlers]
    return tuple(s for s in picked if s is not None)


class StaticIndependence:
    """A proven-commutation table over recorded footprints.

    ``proves(a, b)`` is consulted only where the dynamic relation said
    *dependent*; it may return True exactly when the pair's only
    obstruction was a pending crash and the static summary rules out
    every hidden interaction.  The conservative direction is free: any
    False merely keeps a branch.
    """

    def __init__(self, summary: AlgorithmSummary) -> None:
        self.summary = summary
        #: Commutation is only arguable when isolation is proven for
        #: *every* handler: an open handler anywhere could reach shared
        #: state that any other handler observes.
        self.usable = summary.closed and bool(summary.handlers)

    @classmethod
    def from_algorithm(cls, algorithm: type) -> "StaticIndependence":
        return cls(summarize_algorithm(algorithm))

    @classmethod
    def for_simulator(
        cls, simulator: "Simulator"
    ) -> "StaticIndependence | None":
        """Build the table for a simulator's algorithm, best effort.

        Returns ``None`` when the algorithm's source is unavailable
        (dynamically synthesized classes) — callers treat that exactly
        like an unusable table.
        """
        try:
            probe = simulator.algorithm_factory(0, simulator.n)
            return cls.from_algorithm(type(probe))
        except (OSError, TypeError, SyntaxError):
            return None

    def proves(self, a: Footprint | None, b: Footprint | None) -> bool:
        """May ``a`` and ``b`` be reordered, despite a pending crash?

        Requires every dynamic commutation condition except the pending
        blanket — no adjacent injection, no oracle touch, no emission,
        disjoint pid sets — plus two crash-specific ones: neither event
        touched a pending victim's process, and the (whole-algorithm)
        summary is closed, so pid-disjointness really implies state
        disjointness.
        """
        if not self.usable:
            return False
        if a is None or b is None:
            return False
        if a.crashed or b.crashed:
            return False
        if a.oracle or b.oracle:
            return False
        if a.sent or b.sent:
            return False
        if a.pids & b.pids:
            return False
        pending = a.pending | b.pending
        if (a.pids | b.pids) & pending:
            return False
        # Both events' handler sets must be statically accounted (an
        # event whose kind maps to no analyzed handler proves nothing).
        return bool(attributed_handlers(self.summary, a.kind)) and bool(
            attributed_handlers(self.summary, b.kind)
        )

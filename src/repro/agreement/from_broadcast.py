"""Solving k-set agreement *from* a broadcast abstraction.

Two forms are provided:

* :func:`solve_agreement_with_broadcast` — an end-to-end run on the free
  simulator: every process broadcasts its proposal through a given
  broadcast algorithm and decides the first content it delivers.  If the
  algorithm's executions satisfy the First-k (or k-BO, or Total-Order for
  k = 1) ordering property, at most k distinct values are decided — this
  is the "k-SA can be trivially solved by broadcasting all proposed
  values and deciding on the first delivered ones" direction of
  Section 1.4.

* :class:`BroadcastClient` / :class:`FirstDeliveredClient` — the same
  algorithm as an *abstraction-level* state machine (denoted A' in
  Lemma 9: it uses only ``broadcast`` and ``deliver``, no send/receive).
  The contradiction pipeline replays these clients against hand-built
  abstraction executions (the solo runs α_i and the renamed execution δ).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from ..core.execution import Execution
from ..core.message import Message, MessageFactory
from ..runtime.crash import CrashSchedule
from ..runtime.ksa_objects import DecisionPolicy
from ..runtime.process import BroadcastProcess
from ..runtime.simulator import SimulationResult, Simulator

__all__ = [
    "AgreementOutcome",
    "solve_agreement_with_broadcast",
    "BroadcastClient",
    "FirstDeliveredClient",
    "SoloRun",
    "run_solo",
    "replay_clients",
]


@dataclass
class AgreementOutcome:
    """Decisions reached by running agreement-from-broadcast end to end."""

    decisions: Mapping[int, Hashable]
    simulation: SimulationResult

    @property
    def distinct(self) -> set[Hashable]:
        return set(self.decisions.values())

    def satisfies_agreement(self, k: int) -> bool:
        """True iff at most k distinct values were decided."""
        return len(self.distinct) <= k


def solve_agreement_with_broadcast(
    n: int,
    algorithm_factory: Callable[[int, int], BroadcastProcess],
    proposals: Mapping[int, Hashable],
    *,
    k: int = 1,
    ksa_policy: DecisionPolicy | None = None,
    seed: int = 0,
    crash_schedule: CrashSchedule | None = None,
) -> AgreementOutcome:
    """Each process broadcasts its proposal and decides its first delivery.

    ``proposals[p]`` is the value process ``p`` proposes; processes absent
    from the map do not participate (they still deliver).  Returns the
    per-process decisions (first-delivered contents) and the underlying
    simulation for inspection.
    """
    simulator = Simulator(
        n, algorithm_factory, k=k, ksa_policy=ksa_policy, seed=seed
    )
    scripts = {p: [("prop", p, v)] for p, v in proposals.items()}
    result = simulator.run(scripts, crash_schedule=crash_schedule)
    decisions: dict[int, Hashable] = {}
    for p in proposals:
        head = result.execution.first_delivered(p)
        if head is not None:
            decisions[p] = head.content[2]
    return AgreementOutcome(decisions=decisions, simulation=result)


# ---------------------------------------------------------------------------
# Abstraction-level clients (the A' of Lemma 9)
# ---------------------------------------------------------------------------


class BroadcastClient(ABC):
    """A k-SA algorithm over the *broadcast interface only* (A' in Lemma 9).

    A client proposes a value by broadcasting contents and decides based
    solely on the sequence of messages it delivers.  It never touches
    send/receive — Lemma 9's transformation A → A' is thus built in.
    """

    def __init__(self, pid: int, n: int, proposal: Hashable) -> None:
        self.pid = pid
        self.n = n
        self.proposal = proposal
        self.decision: Hashable | None = None

    @abstractmethod
    def initial_broadcasts(self) -> Sequence[Hashable]:
        """Contents to broadcast when the client starts."""

    @abstractmethod
    def on_deliver(self, message: Message) -> None:
        """React to one B-delivery; may set :attr:`decision`."""

    @property
    def decided(self) -> bool:
        return self.decision is not None


class FirstDeliveredClient(BroadcastClient):
    """Propose by broadcasting; decide the first delivered proposal."""

    def initial_broadcasts(self) -> Sequence[Hashable]:
        return [("prop", self.pid, self.proposal)]

    def on_deliver(self, message: Message) -> None:
        if self.decision is None:
            content = message.content
            if (
                isinstance(content, tuple)
                and len(content) == 3
                and content[0] == "prop"
            ):
                self.decision = content[2]


class MultiRoundClient(BroadcastClient):
    """Broadcast several messages; decide only after ``rounds`` deliveries.

    A deliberately "slower" A' whose solo runs deliver ``rounds`` messages
    before deciding (``N_i = rounds``), exercising the Lemma 9 machinery
    with N > 1: the pipeline must then request N-solo executions with N
    witness messages per process from Algorithm 1.  The decision is the
    first delivered proposal content, as in
    :class:`FirstDeliveredClient`.
    """

    rounds = 3

    def __init__(self, pid: int, n: int, proposal: Hashable) -> None:
        super().__init__(pid, n, proposal)
        self._delivered_count = 0
        self._first_proposal: Hashable | None = None

    def initial_broadcasts(self) -> Sequence[Hashable]:
        head = [("prop", self.pid, self.proposal)]
        fillers = [
            ("round", self.pid, index) for index in range(1, self.rounds)
        ]
        return head + fillers

    def on_deliver(self, message: Message) -> None:
        content = message.content
        if (
            self._first_proposal is None
            and isinstance(content, tuple)
            and len(content) == 3
            and content[0] == "prop"
        ):
            self._first_proposal = content[2]
        self._delivered_count += 1
        if (
            self.decision is None
            and self._delivered_count >= self.rounds
            and self._first_proposal is not None
        ):
            self.decision = self._first_proposal


@dataclass
class SoloRun:
    """The solo execution α_i of Lemma 9 for one process.

    ``messages`` are the messages the process B-delivered before deciding
    (the paper's ``m_{i,1} … m_{i,N_i}``); by BC-Validity they are its own
    broadcasts in a solo execution.
    """

    pid: int
    proposal: Hashable
    decision: Hashable
    messages: tuple[Message, ...]

    @property
    def n_i(self) -> int:
        """The paper's N_i: deliveries before the decision."""
        return len(self.messages)


def run_solo(
    client_factory: Callable[[int, int, Hashable], BroadcastClient],
    pid: int,
    n: int,
    proposal: Hashable,
    *,
    factory: MessageFactory | None = None,
    max_broadcasts: int = 1000,
) -> SoloRun:
    """Execute A' solo: all other processes crash before any step.

    Every broadcast abstraction must admit this schedule (the client's own
    messages are delivered to it, by BC-Local-Termination and
    BC-Global-CS-Termination), so the run is abstraction-independent —
    exactly why Lemma 9 can quantify over all B.
    """
    factory = factory or MessageFactory()
    client = client_factory(pid, n, proposal)
    pending = list(client.initial_broadcasts())
    delivered: list[Message] = []
    broadcasts = 0
    while not client.decided:
        if not pending:
            raise RuntimeError(
                f"p{pid}: client neither decides nor broadcasts in its "
                f"solo run — it cannot satisfy k-SA-Termination"
            )
        if broadcasts >= max_broadcasts:
            raise RuntimeError(
                f"p{pid}: client exceeded {max_broadcasts} broadcasts "
                f"without deciding in its solo run"
            )
        content = pending.pop(0)
        broadcasts += 1
        message = factory.new(pid, content)
        delivered.append(message)
        client.on_deliver(message)
    if client.decision != proposal:
        raise RuntimeError(
            f"p{pid}: decided {client.decision!r} in a solo run where only "
            f"{proposal!r} was proposed — k-SA-Validity violated"
        )
    return SoloRun(
        pid=pid,
        proposal=proposal,
        decision=client.decision,
        messages=tuple(delivered),
    )


def replay_clients(
    client_factory: Callable[[int, int, Hashable], BroadcastClient],
    execution: Execution,
    proposals: Mapping[int, Hashable],
) -> dict[int, Hashable]:
    """Feed an abstraction-level execution's deliveries to fresh clients.

    For each process, a new client is created and receives exactly the
    delivery sequence the execution prescribes; the resulting decisions
    are returned.  Used on δ in the Theorem 1 pipeline.
    """
    decisions: dict[int, Hashable] = {}
    for pid, proposal in proposals.items():
        client = client_factory(pid, execution.n, proposal)
        client.initial_broadcasts()  # the broadcasts are already in δ
        for message in execution.deliveries_of(pid):
            client.on_deliver(message)
            if client.decided:
                break
        if client.decided:
            decisions[pid] = client.decision
    return decisions

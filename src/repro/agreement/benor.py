"""Ben-Or's randomized binary consensus — CAMP_n[coin] with a majority.

The other classical escape from FLP (besides Ω, see
:mod:`repro.agreement.paxos`): replace the oracle with randomness.
Ben-Or (PODC 1983) solves *binary* consensus with probability-1
termination when t < n/2 processes may crash.  Round r has two phases:

1. **report** — broadcast ``R(r, estimate)``; collect n - t reports.
   If more than n/2 report the same value v, propose v; else propose ⊥.
2. **proposal** — broadcast ``P(r, proposal)``; collect n - t proposals.
   * ≥ t + 1 of them carry the same v ≠ ⊥ → **decide v** and broadcast
     ``D(v)`` so everyone else finishes immediately;
   * ≥ 1 carries v ≠ ⊥ → adopt v as the new estimate;
   * otherwise → flip a coin for the new estimate.

Quorum intersection makes deciding safe (two deciders must share a
proposal sender) and contagious (everyone adopts v next round); the coin
breaks the symmetry FLP exploits.  Safety (agreement, validity) holds
under any schedule and any coin outcomes; only termination is
probabilistic — under the simulator's fair random schedules a handful of
rounds suffices.  Coins are seeded per (seed, pid, instance, round), so
runs stay replayable.

This rounds out the message-passing agreement toolbox: oracle-backed
k-SA objects (the model's axioms), leader-based consensus (Paxos over
Ω), and coin-based consensus (Ben-Or) — all available at k = 1, while
the paper's Theorem 1 shows the strict middle 1 < k < n admits no
broadcast-abstraction characterization at all.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterator

from ..runtime.effects import Effect, Wait
from ..runtime.service import Invocation, ServiceProcess

__all__ = ["BenOrProcess"]

_ABSTAIN = "⊥"


class BenOrProcess(ServiceProcess):
    """Binary consensus by majority reports, proposal echoes and coins.

    ``Invocation("propose", instance, v)`` with ``v ∈ {0, 1}`` returns
    the decided bit.
    """

    def __init__(self, pid: int, n: int, *, coin_seed: int = 0) -> None:
        super().__init__(pid, n)
        self.coin_seed = coin_seed
        #: tolerated crashes: the largest t with t < n/2
        self.t = (n - 1) // 2
        self._reports: dict[tuple[str, int], list[Hashable]] = {}
        self._proposals: dict[tuple[str, int], list[Hashable]] = {}
        self._decided: dict[str, Hashable] = {}
        self._announced: set[str] = set()

    @property
    def _quorum(self) -> int:
        return self.n - self.t

    def _coin(self, instance: str, round_index: int) -> int:
        return random.Random(
            f"{self.coin_seed}/{self.pid}/{instance}/{round_index}"
        ).randint(0, 1)

    def _announce(self, instance: str, value: Hashable) -> Iterator[Effect]:
        if instance not in self._announced:
            self._announced.add(instance)
            yield from self.send_to_all(("D", instance, 0, value))

    def on_invoke(self, invocation: Invocation) -> Iterator[Effect]:
        if invocation.operation != "propose":
            raise ValueError(f"unknown operation {invocation.operation!r}")
        if invocation.argument not in (0, 1):
            raise ValueError("Ben-Or consensus is binary: propose 0 or 1")
        instance = invocation.target
        estimate = invocation.argument
        round_index = 0
        while instance not in self._decided:
            key = (instance, round_index)
            # phase 1: reports
            self._reports.setdefault(key, [])
            yield from self.send_to_all(
                ("R", instance, round_index, estimate)
            )
            yield Wait(
                lambda k=key: len(self._reports[k]) >= self._quorum
                or instance in self._decided,
                f"round-{round_index} reports for {instance}",
            )
            if instance in self._decided:
                break
            reports = self._reports[key]
            proposal: Hashable = _ABSTAIN
            for bit in (0, 1):
                if reports.count(bit) > self.n // 2:
                    proposal = bit
            # phase 2: proposals
            self._proposals.setdefault(key, [])
            yield from self.send_to_all(
                ("P", instance, round_index, proposal)
            )
            yield Wait(
                lambda k=key: len(self._proposals[k]) >= self._quorum
                or instance in self._decided,
                f"round-{round_index} proposals for {instance}",
            )
            if instance in self._decided:
                break
            proposals = self._proposals[key]
            for bit in (0, 1):
                count = proposals.count(bit)
                if count >= self.t + 1:
                    self._decided[instance] = bit
                    yield from self._announce(instance, bit)
                    break
                if count >= 1:
                    estimate = bit
                    break
            else:
                estimate = self._coin(instance, round_index)
            round_index += 1
        value = self._decided[instance]
        yield from self._announce(instance, value)
        return value

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        kind, instance, round_index, value = payload
        key = (instance, round_index)
        if kind == "R":
            self._reports.setdefault(key, []).append(value)
        elif kind == "P":
            self._proposals.setdefault(key, []).append(value)
        elif kind == "D":
            if instance not in self._decided:
                self._decided[instance] = value
            yield from self._announce(instance, value)
        return
        yield

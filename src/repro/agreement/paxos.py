"""Single-decree Paxos over Ω + majority — consensus in CAMP_n[Ω].

The paper's k = 1 boundary equates consensus with Total-Order Broadcast;
this module supplies consensus itself as a *message-passing algorithm*
rather than an oracle: the classic synod protocol, safe under any
asynchrony and failure pattern, live once the eventual-leader detector Ω
stabilizes and a majority of processes is correct — the celebrated
weakest-failure-detector setting.  (For k > 1 no such luck exists in the
wait-free model, which is the paper's backdrop.)

Every process plays all three roles:

* **acceptor** — answers PREPARE with a promise (or a NACK carrying the
  higher promised ballot) and ACCEPT with an acceptance;
* **proposer** — while Ω says it leads, runs ballots
  ``(round, pid)``: phase 1 collects a majority of promises and adopts
  the highest-ballot accepted value (or its own proposal), phase 2
  collects a majority of acceptances and then broadcasts DECIDE;
* **learner** — adopts any DECIDE it receives and re-broadcasts it once
  (so every correct process decides).

The ``propose`` operation (:class:`~repro.runtime.service.Invocation`
``("propose", instance, value)``) returns the decided value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from ..detectors.oracles import OmegaOracle
from ..runtime.effects import Effect, Send, Wait
from ..runtime.service import Invocation, ServiceProcess

__all__ = ["Ballot", "PaxosProcess"]


@dataclass(frozen=True, order=True)
class Ballot:
    """A totally ordered ballot number: (round, proposer pid)."""

    round: int
    proposer: int


_ZERO = Ballot(-1, -1)


@dataclass
class _InstanceState:
    """One consensus instance's acceptor/learner/proposer state."""

    promised: Ballot = _ZERO
    accepted_ballot: Ballot = _ZERO
    accepted_value: Hashable = None
    decided: Hashable = None
    has_decided: bool = False
    announced: bool = False
    # proposer bookkeeping, per ballot:
    promises: dict[Ballot, list[tuple[Ballot, Hashable]]] = field(
        default_factory=dict
    )
    acceptances: dict[Ballot, int] = field(default_factory=dict)
    preempted: set[Ballot] = field(default_factory=set)


class PaxosProcess(ServiceProcess):
    """Synod consensus: all roles in one process, one state per instance."""

    def __init__(self, pid: int, n: int, omega: OmegaOracle) -> None:
        super().__init__(pid, n)
        self.omega = omega
        self._instances: dict[str, _InstanceState] = {}
        self._next_round = 0

    def _state(self, instance: str) -> _InstanceState:
        return self._instances.setdefault(instance, _InstanceState())

    @property
    def _majority(self) -> int:
        return self.n // 2 + 1

    # -- proposer ----------------------------------------------------------

    def on_invoke(self, invocation: Invocation) -> Iterator[Effect]:
        if invocation.operation != "propose":
            raise ValueError(
                f"unknown operation {invocation.operation!r}"
            )
        instance = invocation.target
        proposal = invocation.argument
        state = self._state(instance)
        while not state.has_decided:
            if self.omega.leader() != self.pid:
                yield Wait(
                    lambda: state.has_decided
                    or self.omega.leader() == self.pid,
                    f"decision or leadership for {instance}",
                )
                continue
            ballot = Ballot(self._next_round, self.pid)
            self._next_round += 1
            yield from self._run_ballot(instance, state, ballot, proposal)
        return state.decided

    def _run_ballot(
        self,
        instance: str,
        state: _InstanceState,
        ballot: Ballot,
        proposal: Hashable,
    ) -> Iterator[Effect]:
        state.promises[ballot] = []
        state.acceptances[ballot] = 0
        yield from self.send_to_all(("PREPARE", instance, ballot))
        yield Wait(
            lambda: len(state.promises[ballot]) >= self._majority
            or ballot in state.preempted
            or state.has_decided
            or self.omega.leader() != self.pid,
            f"phase-1 quorum for {instance} ballot {ballot}",
        )
        if (
            state.has_decided
            or ballot in state.preempted
            or len(state.promises[ballot]) < self._majority
        ):
            return
        highest = max(
            state.promises[ballot], key=lambda pair: pair[0]
        )
        value = highest[1] if highest[0] != _ZERO else proposal
        yield from self.send_to_all(("ACCEPT", instance, ballot, value))
        yield Wait(
            lambda: state.acceptances[ballot] >= self._majority
            or ballot in state.preempted
            or state.has_decided
            or self.omega.leader() != self.pid,
            f"phase-2 quorum for {instance} ballot {ballot}",
        )
        if state.has_decided or ballot in state.preempted:
            return
        if state.acceptances[ballot] >= self._majority:
            yield from self.send_to_all(("DECIDE", instance, value))

    # -- acceptor / learner --------------------------------------------------

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        kind = payload[0]
        instance = payload[1]
        state = self._state(instance)
        if kind == "PREPARE":
            ballot = payload[2]
            if ballot > state.promised:
                state.promised = ballot
                yield Send(
                    sender,
                    (
                        "PROMISE",
                        instance,
                        ballot,
                        state.accepted_ballot,
                        state.accepted_value,
                    ),
                )
            else:
                yield Send(sender, ("NACK", instance, ballot))
        elif kind == "ACCEPT":
            ballot, value = payload[2], payload[3]
            if ballot >= state.promised:
                state.promised = ballot
                state.accepted_ballot = ballot
                state.accepted_value = value
                yield Send(sender, ("ACCEPTED", instance, ballot))
            else:
                yield Send(sender, ("NACK", instance, ballot))
        elif kind == "PROMISE":
            ballot, accepted_ballot, accepted_value = (
                payload[2], payload[3], payload[4],
            )
            if ballot in state.promises:
                state.promises[ballot].append(
                    (accepted_ballot, accepted_value)
                )
        elif kind == "ACCEPTED":
            ballot = payload[2]
            if ballot in state.acceptances:
                state.acceptances[ballot] += 1
        elif kind == "NACK":
            ballot = payload[2]
            state.preempted.add(ballot)
        elif kind == "DECIDE":
            value = payload[2]
            if not state.has_decided:
                state.has_decided = True
                state.decided = value
            if not state.announced:
                state.announced = True
                yield from self.send_to_all(("DECIDE", instance, value))

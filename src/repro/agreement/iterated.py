"""Iterated k-set agreement over k-Stepped Broadcast (Section 3.2).

The paper's motivation for k-Stepped Broadcast: "the ordering of messages
within each S_a set could determine the set of values decided on a
sequence of k-SA objects, and conversely, thereby establishing
equivalence."  This module executes that claim: every process broadcasts
its round-a proposal as its a-th message, and decides round a on the
content of the first S_a member it delivers.  The k-Stepped ordering
property bounds each round's distinct decisions by k.

(The §3.2 criticism is *not* that this fails — it works, as
:func:`solve_iterated_agreement` shows — but that the abstraction
providing it is not compositional, so it cannot serve as a system-wide
communication service; see ``examples/composition_pitfalls.py`` and the
S1/T1 experiments.)
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Sequence

from ..core.execution import Execution
from ..runtime.ksa_objects import DecisionPolicy
from ..runtime.process import BroadcastProcess
from ..runtime.simulator import SimulationResult, Simulator

__all__ = ["IteratedOutcome", "round_decisions", "solve_iterated_agreement"]


class IteratedOutcome:
    """Per-round decisions of an iterated-agreement run."""

    def __init__(
        self,
        decisions: Mapping[int, Mapping[int, Hashable]],
        simulation: SimulationResult,
    ) -> None:
        #: ``decisions[round][process]`` — the value decided in a round.
        self.decisions = decisions
        self.simulation = simulation

    def distinct_per_round(self) -> dict[int, int]:
        return {
            round_index: len(set(values.values()))
            for round_index, values in self.decisions.items()
        }

    def satisfies_agreement(self, k: int) -> bool:
        """At most k distinct values decided in every round."""
        return all(
            count <= k for count in self.distinct_per_round().values()
        )


def round_decisions(
    execution: Execution, rounds: int
) -> dict[int, dict[int, Hashable]]:
    """Decisions read off an execution: first-delivered S_a member per
    process, where S_a is the set of a-th messages of all processes."""
    decisions: dict[int, dict[int, Hashable]] = {}
    for process in range(execution.n):
        sequence = execution.deliveries_of(process)
        for round_index in range(rounds):
            head = next(
                (m for m in sequence if m.uid.seq == round_index), None
            )
            if head is not None:
                decisions.setdefault(round_index, {})[process] = (
                    head.content
                )
    return decisions


def solve_iterated_agreement(
    n: int,
    algorithm_factory: Callable[[int, int], BroadcastProcess],
    proposals: Mapping[int, Sequence[Hashable]],
    *,
    k: int,
    ksa_policy: DecisionPolicy | None = None,
    seed: int = 0,
) -> IteratedOutcome:
    """Solve one k-SA instance per round through a stepped broadcast.

    ``proposals[p][a]`` is process p's proposal for round a; all processes
    must participate in every round (the lock-step pattern the
    abstraction needs).
    """
    rounds = {len(values) for values in proposals.values()}
    if len(rounds) != 1:
        raise ValueError(
            "iterated agreement needs the lock-step pattern: every "
            "process proposes in every round"
        )
    (round_count,) = rounds
    simulator = Simulator(
        n, algorithm_factory, k=k, ksa_policy=ksa_policy, seed=seed,
        sync_broadcasts=True,
    )
    result = simulator.run({p: list(v) for p, v in proposals.items()})
    decisions = round_decisions(
        result.execution.broadcast_projection(), round_count
    )
    return IteratedOutcome(decisions, result)

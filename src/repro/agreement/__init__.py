"""Agreement algorithms and reductions.

* :mod:`repro.agreement.from_broadcast` — k-SA from a broadcast
  abstraction (both simulator-level and abstraction-level forms, the
  latter being Lemma 9's A');
* :mod:`repro.agreement.boundaries` — the k = 1 and k = n boundary cases.
"""

from .benor import BenOrProcess
from .boundaries import solve_nsa_trivially
from .floodset import FloodSetProcess
from .iterated import (
    IteratedOutcome,
    round_decisions,
    solve_iterated_agreement,
)
from .paxos import Ballot, PaxosProcess
from .from_broadcast import (
    AgreementOutcome,
    BroadcastClient,
    FirstDeliveredClient,
    MultiRoundClient,
    SoloRun,
    replay_clients,
    run_solo,
    solve_agreement_with_broadcast,
)

__all__ = [
    "AgreementOutcome",
    "Ballot",
    "BenOrProcess",
    "BroadcastClient",
    "FirstDeliveredClient",
    "FloodSetProcess",
    "IteratedOutcome",
    "MultiRoundClient",
    "PaxosProcess",
    "SoloRun",
    "replay_clients",
    "round_decisions",
    "run_solo",
    "solve_agreement_with_broadcast",
    "solve_iterated_agreement",
    "solve_nsa_trivially",
]

"""FloodSet consensus in CAMP_n[P] — wait-free, given a perfect detector.

The third point of the agreement landscape the paper's backdrop spans:

* **CAMP_n[∅]** — consensus impossible with one crash (FLP), k-SA
  impossible for k ≤ t (the paper's setting);
* **CAMP_n[Ω] + majority** — Paxos (:mod:`repro.agreement.paxos`);
* **CAMP_n[P]** — *wait-free* consensus (t = n - 1) by flooding: with a
  detector that never lies, rounds can wait for exactly the unsuspected
  processes, and t + 1 rounds guarantee a round in which no crash
  occurs, after which all known-sets are equal.

Each process floods its set of known proposals for t + 1 rounds, each
round waiting for the round messages of every currently-trusted process;
after the last round it decides the minimum known value.  Safety *and*
liveness both lean on P's strong accuracy — with an unreliable detector
this algorithm is wrong, which is precisely why P sits at the top of the
detector hierarchy.

The oracle here is instantaneous (``lag=0``): in an event-driven
simulation a lagging detector can freeze the clock (everyone waits, no
events advance time), and P's power is what is being exercised, not its
detection latency.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..detectors.oracles import PerfectDetector
from ..runtime.effects import Effect, Wait
from ..runtime.service import Invocation, ServiceProcess

__all__ = ["FloodSetProcess"]


class FloodSetProcess(ServiceProcess):
    """t + 1 rounds of flooding, waiting on the detector's trusted set."""

    def __init__(
        self, pid: int, n: int, detector: PerfectDetector
    ) -> None:
        super().__init__(pid, n)
        self.detector = detector
        self.t = n - 1  # wait-free: any number of crashes tolerated
        self._received: dict[tuple[str, int], dict[int, frozenset]] = {}

    def _round_complete(self, instance: str, round_index: int) -> bool:
        """Heard from every process the detector still trusts?"""
        heard = self._received.get((instance, round_index), {})
        return self.detector.trusted() <= set(heard) | {self.pid}

    def on_invoke(self, invocation: Invocation) -> Iterator[Effect]:
        if invocation.operation != "propose":
            raise ValueError(f"unknown operation {invocation.operation!r}")
        instance = invocation.target
        known: frozenset = frozenset({invocation.argument})
        for round_index in range(self.t + 1):
            yield from self.send_to_all(
                ("FLOOD", instance, round_index, known)
            )
            yield Wait(
                lambda r=round_index: self._round_complete(instance, r),
                f"round-{round_index} flood for {instance}",
            )
            for values in self._received.get(
                (instance, round_index), {}
            ).values():
                known |= values
        return min(known)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        _kind, instance, round_index, values = payload
        self._received.setdefault((instance, round_index), {})[sender] = (
            values
        )
        return
        yield

"""The boundary cases k = 1 and k = n (Section 4, opening remarks).

* **k = 1** — consensus, characterized by Total-Order Broadcast: the
  reduction TO-broadcast → consensus is "decide the first TO-delivered
  proposal" (:func:`repro.agreement.from_broadcast.solve_agreement_with_
  broadcast` with :class:`~repro.broadcasts.total_order.TotalOrderBroadcast`);
  the converse reduction consensus → TO-broadcast is
  :class:`~repro.broadcasts.total_order.TotalOrderBroadcast` itself,
  which is built from consensus (k = 1 oracle) objects.

* **k = n** — n-set agreement "can be trivially solved without any
  communication, rendering it equivalent to Send-To-All Broadcast":
  :func:`solve_nsa_trivially` decides each process's own value with zero
  steps.
"""

from __future__ import annotations

from typing import Hashable, Mapping

__all__ = ["solve_nsa_trivially"]


def solve_nsa_trivially(
    proposals: Mapping[int, Hashable],
) -> dict[int, Hashable]:
    """n-set agreement with no communication: decide your own proposal.

    With at most n processes, at most n distinct values are decided, so
    n-SA-Agreement holds vacuously; validity and termination are
    immediate.
    """
    return dict(proposals)

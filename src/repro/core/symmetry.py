"""The paper's two symmetry properties, as machine checkers.

* **Compositionality** (Definition 2): for every admissible execution α and
  every subset M of its messages, the restriction of α onto M is
  admissible.
* **Content-Neutrality** (Definition 3): for every admissible execution α
  and every injective message substitution r, the renamed execution is
  admissible.

Both are universally quantified; the checkers here are *falsifiers* over a
given execution: they enumerate (exhaustively when the message count is
small, by seeded sampling otherwise) subsets or renamings and search for a
counterexample, exactly as the paper does when it exhibits the
``{m'_0, m_1}`` restriction that breaks 1-Stepped Broadcast (Section 3.2).

A successful check is evidence, not proof, of the symmetry property — but a
returned counterexample *is* a proof of its violation, which is the
direction Theorem 1 needs.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from .broadcast_spec import BroadcastSpec, SpecVerdict
from .execution import Execution
from .message import MessageId, Renaming

__all__ = [
    "SymmetryResult",
    "check_compositional",
    "check_content_neutral",
    "pid_permutations",
    "subset_restrictions",
    "sample_renamings",
]

#: Exhaustive subset enumeration is used up to this many messages (2^12
#: subsets); beyond that the checker samples.
_EXHAUSTIVE_LIMIT = 12


@dataclass
class SymmetryResult:
    """Outcome of a symmetry check on one (spec, execution) pair."""

    property_name: str
    spec_name: str
    holds: bool
    cases_checked: int
    counterexample: object | None = None
    counterexample_verdict: SpecVerdict | None = None
    skipped_reason: str | None = None

    def __str__(self) -> str:
        if self.skipped_reason:
            return (
                f"{self.property_name}({self.spec_name}): skipped — "
                f"{self.skipped_reason}"
            )
        if self.holds:
            return (
                f"{self.property_name}({self.spec_name}): no counterexample "
                f"in {self.cases_checked} cases"
            )
        return (
            f"{self.property_name}({self.spec_name}): VIOLATED by "
            f"{self.counterexample}"
        )


def subset_restrictions(
    execution: Execution,
    *,
    max_cases: int = 4096,
    rng: random.Random | None = None,
) -> Iterator[tuple[frozenset[MessageId], Execution]]:
    """Yield (subset, restricted execution) pairs for Definition 2.

    All proper, non-empty subsets are enumerated when there are at most
    :data:`_EXHAUSTIVE_LIMIT` messages; otherwise ``max_cases`` subsets are
    sampled with ``rng`` (seeded externally for reproducibility).
    """
    uids = [m.uid for m in execution.broadcast_messages]
    if len(uids) <= _EXHAUSTIVE_LIMIT:
        cases: Iterable[tuple[MessageId, ...]] = itertools.chain.from_iterable(
            itertools.combinations(uids, size)
            for size in range(1, len(uids))
        )
        for subset in itertools.islice(cases, max_cases):
            frozen = frozenset(subset)
            yield frozen, execution.restrict(frozen)
    else:
        rng = rng or random.Random(0)
        for _ in range(max_cases):
            size = rng.randint(1, len(uids) - 1)
            subset = frozenset(rng.sample(uids, size))
            yield subset, execution.restrict(subset)


def check_compositional(
    spec: BroadcastSpec,
    execution: Execution,
    *,
    assume_complete: bool = True,
    max_cases: int = 4096,
    rng: random.Random | None = None,
    subsets: Iterable[Iterable[MessageId]] | None = None,
) -> SymmetryResult:
    """Search for a restriction of ``execution`` that ``spec`` rejects.

    Definition 2 quantifies over executions admitted by the abstraction, so
    if ``spec`` does not admit ``execution`` in the first place the check
    is vacuous and reported as skipped.  Pass explicit ``subsets`` to test
    targeted witnesses (e.g. the paper's ``{m'_0, m_1}``) instead of the
    enumerated/sampled ones; any iterable of uids is accepted — each is
    normalised to a frozenset *once*, and that same set is both restricted
    on and reported, so a one-shot iterator cannot be consumed twice (the
    old code restricted on the exhausted iterator, silently testing the
    empty restriction while reporting the full subset).
    """
    if not spec.admits(execution, assume_complete=assume_complete).admitted:
        return SymmetryResult(
            "compositionality", spec.name, True, 0,
            skipped_reason="base execution not admitted (vacuous)",
        )
    checked = 0
    cases = (
        (
            (frozen, execution.restrict(frozen))
            for frozen in (frozenset(s) for s in subsets)
        )
        if subsets is not None
        else subset_restrictions(execution, max_cases=max_cases, rng=rng)
    )
    for subset, restricted in cases:
        checked += 1
        verdict = spec.admits(restricted, assume_complete=assume_complete)
        if not verdict.admitted:
            return SymmetryResult(
                "compositionality", spec.name, False, checked,
                counterexample=tuple(sorted(subset)),
                counterexample_verdict=verdict,
            )
    return SymmetryResult("compositionality", spec.name, True, checked)


@dataclass(frozen=True)
class _FreshToken:
    """An opaque, hashable content minted by generated renamings.

    Tokens are plain values: two tokens with the same index are equal.
    Uniqueness *within one renaming* comes from the minting counter in
    :func:`sample_renamings`, which is scoped to the call — a
    process-global counter would make two identically-seeded calls
    produce different (hence irreproducible) renamings.
    """

    index: int

    def __repr__(self) -> str:
        return f"fresh#{self.index}"


def sample_renamings(
    execution: Execution,
    *,
    max_cases: int = 16,
    rng: random.Random | None = None,
) -> Iterator[Renaming]:
    """Yield injective renamings of the execution's messages (Def. 3).

    Three families are produced: (1) all-fresh opaque contents, (2) random
    permutations of message contents across identities, (3) partial
    renamings touching a random subset of messages with fresh contents.
    Every renaming is injective on messages because identities are
    preserved.

    The stream is a pure function of ``execution`` and the ``rng`` seed:
    fresh tokens are numbered by a counter scoped to this call, so two
    identically-seeded calls yield identical renamings.
    """
    rng = rng or random.Random(0)
    fresh_indices = itertools.count()

    def fresh() -> _FreshToken:
        return _FreshToken(next(fresh_indices))

    uids = [m.uid for m in execution.broadcast_messages]
    if not uids:
        return
    yield Renaming({uid: fresh() for uid in uids})
    produced = 1
    while produced < max_cases:
        if produced % 2 == 1 and len(uids) > 1:
            shuffled = list(uids)
            rng.shuffle(shuffled)
            contents = [execution.message_by_uid[u].content for u in uids]
            yield Renaming(dict(zip(shuffled, contents)))
        else:
            size = rng.randint(1, len(uids))
            subset = rng.sample(uids, size)
            yield Renaming({uid: fresh() for uid in subset})
        produced += 1


def pid_permutations(
    groups: Sequence[Iterable[int]],
    n: int,
    *,
    limit: int = 5040,
) -> list[tuple[int, ...]]:
    """Every pid permutation acting within ``groups`` and fixing the rest.

    ``groups`` are disjoint sets of interchangeable process ids out of
    ``0..n-1`` (the renaming symmetries of a configuration — see
    ``BroadcastProcess.symmetric_processes``); the result enumerates the
    product group of within-group permutations, identity first, as full
    ``perm[old_pid] = new_pid`` tuples.  The identity permutation is
    always present (``groups`` may be empty).  ``limit`` guards against
    accidentally exponential groups — symmetry reduction pays |perms|
    encodings per state, so beyond a few hundred permutations a
    different canonicalization strategy is needed anyway.
    """
    normalized = [sorted(set(group)) for group in groups]
    seen: set[int] = set()
    for group in normalized:
        for pid in group:
            if not 0 <= pid < n:
                raise ValueError(f"pid {pid} out of range for n={n}")
            if pid in seen:
                raise ValueError(f"pid {pid} appears in two symmetry groups")
            seen.add(pid)
    perms: list[list[int]] = [list(range(n))]
    for group in normalized:
        extended: list[list[int]] = []
        for base in perms:
            for images in itertools.permutations(group):
                perm = list(base)
                for source, image in zip(group, images):
                    perm[source] = image
                extended.append(perm)
            if len(extended) > limit:
                raise ValueError(
                    f"symmetry group product exceeds {limit} permutations"
                )
        perms = extended
    return [tuple(perm) for perm in perms]


def check_content_neutral(
    spec: BroadcastSpec,
    execution: Execution,
    *,
    assume_complete: bool = True,
    max_cases: int = 16,
    rng: random.Random | None = None,
    renamings: Iterable[Renaming] | None = None,
) -> SymmetryResult:
    """Search for an injective renaming of ``execution`` that ``spec`` rejects.

    Pass explicit ``renamings`` to test targeted witnesses (e.g. renaming
    plain messages into the SA-typed contents of Section 3.2) instead of
    the sampled ones.
    """
    if not spec.admits(execution, assume_complete=assume_complete).admitted:
        return SymmetryResult(
            "content-neutrality", spec.name, True, 0,
            skipped_reason="base execution not admitted (vacuous)",
        )
    checked = 0
    cases = (
        renamings
        if renamings is not None
        else sample_renamings(execution, max_cases=max_cases, rng=rng)
    )
    for renaming in cases:
        checked += 1
        renamed = execution.rename(renaming)
        verdict = spec.admits(renamed, assume_complete=assume_complete)
        if not verdict.admitted:
            return SymmetryResult(
                "content-neutrality", spec.name, False, checked,
                counterexample=renaming,
                counterexample_verdict=verdict,
            )
    return SymmetryResult("content-neutrality", spec.name, True, checked)

"""Message identity and content.

The paper (Section 2) insists that *every sent or broadcast message is
unique, regardless of having identical content*.  We therefore separate a
message's *identity* (:class:`MessageId`, never two alike in an execution)
from its *content* (an arbitrary hashable value, possibly shared).

Content-neutrality (Definition 3) substitutes messages through an injective
function ``r``; in this library a renaming keeps the broadcast/delivery
*event structure* (and hence the identity skeleton) intact and rewrites the
content attached to each identity.  See :meth:`repro.core.execution.Execution.rename`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Mapping

__all__ = [
    "MessageId",
    "Message",
    "MessageFactory",
    "Renaming",
    "fresh_renaming",
]


@dataclass(frozen=True, order=True)
class MessageId:
    """Globally unique identity of a broadcast message.

    ``sender`` is the identifier of the broadcasting process and ``seq`` the
    per-sender sequence number of the broadcast invocation, so identities
    are unique by construction and carry the provenance required by
    ``B.deliver m from p_i`` events.
    """

    sender: int
    seq: int

    def __str__(self) -> str:
        return f"m[{self.sender}.{self.seq}]"

    def __copy__(self) -> "MessageId":
        return self

    def __deepcopy__(self, memo: dict[int, Any]) -> "MessageId":
        # Identities are immutable value objects; snapshotting simulator
        # state (SimulationRun.fork) must never duplicate them.
        return self


@dataclass(frozen=True)
class Message:
    """A broadcast message: a unique identity plus an arbitrary content."""

    uid: MessageId
    content: Hashable = None

    @property
    def sender(self) -> int:
        """The process that broadcast this message."""
        return self.uid.sender

    def with_content(self, content: Hashable) -> "Message":
        """Return a copy of this message carrying ``content`` instead."""
        return Message(self.uid, content)

    def __str__(self) -> str:
        if self.content is None:
            return str(self.uid)
        return f"{self.uid}:{self.content!r}"

    def __copy__(self) -> "Message":
        return self

    def __deepcopy__(self, memo: dict[int, Any]) -> "Message":
        # Messages are immutable; sharing them across forked simulator
        # snapshots is both safe and what identity-uniqueness requires.
        return self


class MessageFactory:
    """Mints unique :class:`Message` objects, one sequence per sender."""

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}

    def new(self, sender: int, content: Hashable = None) -> Message:
        """Create a fresh message broadcast by ``sender``."""
        seq = self._counters.get(sender, 0)
        self._counters[sender] = seq + 1
        return Message(MessageId(sender, seq), content)

    def fork(self) -> "MessageFactory":
        """An independent factory that continues this one's sequences.

        Used by :meth:`repro.runtime.simulator.SimulationRun.fork` so a
        snapshot keeps minting identities unique within its own branch
        while the original keeps minting within its branch.
        """
        clone = MessageFactory()
        clone._counters = dict(self._counters)
        return clone

    def counters(self) -> Mapping[int, int]:
        """The per-sender sequence counters (a read-only snapshot).

        Exposed so state snapshots — the explorer's dedup fingerprints in
        particular — can digest the minting state without reaching into
        private attributes: two factories with equal counters mint
        identical identity sequences forever after.
        """
        return dict(self._counters)


@dataclass(frozen=True)
class Renaming:
    """An injective substitution of message contents, keyed by identity.

    This realizes the function ``r`` of Definition 3 (content-neutrality):
    the execution structure is preserved while every occurrence of a message
    ``m`` is replaced by ``r(m)`` — a message with the same identity
    skeleton but substituted content.  Injectivity is interpreted on
    messages: distinct identities must not be collapsed, which holds by
    construction because identities are preserved.
    """

    mapping: Mapping[MessageId, Hashable] = field(default_factory=dict)

    def apply(self, message: Message) -> Message:
        """Rename one message (identity preserved, content substituted)."""
        if message.uid in self.mapping:
            return message.with_content(self.mapping[message.uid])
        return message

    def __contains__(self, uid: MessageId) -> bool:
        return uid in self.mapping

    def __len__(self) -> int:
        return len(self.mapping)

    def items(self) -> Iterator[tuple[MessageId, Hashable]]:
        return iter(self.mapping.items())


def fresh_renaming(
    uids: Iterable[MessageId], contents: Iterable[Hashable]
) -> Renaming:
    """Build a :class:`Renaming` pairing ``uids`` with ``contents`` in order.

    Raises :class:`ValueError` if there are fewer contents than identities.
    """
    uid_list = list(uids)
    content_list = list(itertools.islice(contents, len(uid_list)))
    if len(content_list) < len(uid_list):
        raise ValueError(
            f"need {len(uid_list)} contents, got {len(content_list)}"
        )
    return Renaming(dict(zip(uid_list, content_list)))

"""Broadcast abstractions as specifications (Section 3).

A broadcast abstraction is, semantically, the set of executions it admits.
This module gives that semantics an executable form: a
:class:`BroadcastSpec` decides admissibility of a finite (broadcast-level)
execution, split into:

* the four properties common to *all* broadcast abstractions —
  **BC-Validity**, **BC-No-Duplication**, **BC-Local-Termination**,
  **BC-Global-CS-Termination** (Section 3.1);
* an abstraction-specific **ordering predicate** (safety), implemented by
  subclasses in :mod:`repro.specs`;
* optional abstraction-specific **liveness** (e.g. Uniform Reliable
  Broadcast's "if anyone delivers, every correct process delivers").

Liveness on finite executions is checked under the usual completeness
assumption (see :mod:`repro.core.model`); pass ``assume_complete=False``
to check safety only — this is the mode used on the adversarial prefix of
Section 4.2, where the paper notes that only safety matters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from .execution import Execution
from .message import MessageId

__all__ = ["SpecVerdict", "BroadcastSpec", "check_base_properties"]


@dataclass
class SpecVerdict:
    """The outcome of checking one execution against one specification."""

    spec_name: str
    validity: list[str] = field(default_factory=list)
    no_duplication: list[str] = field(default_factory=list)
    local_termination: list[str] = field(default_factory=list)
    global_cs_termination: list[str] = field(default_factory=list)
    ordering: list[str] = field(default_factory=list)
    liveness: list[str] = field(default_factory=list)

    @property
    def admitted(self) -> bool:
        """True when the execution is admitted by the specification."""
        return not self.all_violations()

    @property
    def safety_ok(self) -> bool:
        """True when no *safety* clause is violated (liveness ignored)."""
        return not (self.validity + self.no_duplication + self.ordering)

    def all_violations(self) -> list[str]:
        return (
            self.validity
            + self.no_duplication
            + self.local_termination
            + self.global_cs_termination
            + self.ordering
            + self.liveness
        )

    def __str__(self) -> str:
        if self.admitted:
            return f"{self.spec_name}: admitted"
        head = f"{self.spec_name}: rejected"
        return head + "".join(
            f"\n  - {violation}" for violation in self.all_violations()
        )


def check_base_properties(
    execution: Execution, *, assume_complete: bool = True
) -> SpecVerdict:
    """Check the four properties shared by all broadcast abstractions."""
    verdict = SpecVerdict(spec_name="base")
    broadcast_before: dict[MessageId, int] = {}
    delivered_by: dict[int, set[MessageId]] = {}

    for index, step in enumerate(execution):
        if step.is_invoke():
            message = step.action.message
            if message.uid in broadcast_before:
                verdict.validity.append(
                    f"step {index}: {message} broadcast twice"
                )
            if message.sender != step.process:
                verdict.validity.append(
                    f"step {index}: p{step.process} broadcasts a message "
                    f"attributed to p{message.sender}"
                )
            broadcast_before[message.uid] = index
        elif step.is_deliver() or step.is_deliver_set():
            if step.is_deliver():
                delivered_messages = (step.action.message,)
            else:
                delivered_messages = step.action.messages
            seen = delivered_by.setdefault(step.process, set())
            for message in delivered_messages:
                if message.uid not in broadcast_before:
                    verdict.validity.append(
                        f"step {index}: p{step.process} delivers {message} "
                        f"which was never broadcast"
                    )
                if message.uid in seen:
                    verdict.no_duplication.append(
                        f"step {index}: p{step.process} delivers "
                        f"{message} twice"
                    )
                seen.add(message.uid)

    if assume_complete:
        correct = execution.correct
        returned = {
            step.action.message.uid
            for step in execution
            if step.is_return()
        }
        # Iterate in uid order, not invocation order: two executions that
        # reach the same per-process observations along different global
        # interleavings must render their liveness violations identically.
        for message in sorted(
            execution.broadcast_messages, key=lambda m: m.uid
        ):
            sender_correct = message.sender in correct
            if sender_correct and message.uid not in returned:
                verdict.local_termination.append(
                    f"correct p{message.sender} never returns from "
                    f"broadcast({message})"
                )
            if sender_correct:
                for process in correct:
                    if message.uid not in delivered_by.get(process, ()):
                        verdict.global_cs_termination.append(
                            f"correct p{process} never delivers {message} "
                            f"broadcast by correct p{message.sender}"
                        )
    return verdict


class BroadcastSpec(ABC):
    """A broadcast abstraction, i.e. a predicate on executions.

    Subclasses define :attr:`name` and :meth:`ordering_violations`, and may
    override :meth:`liveness_violations` for extra liveness clauses.
    """

    #: Human-readable abstraction name (e.g. ``"k-BO Broadcast (k=2)"``).
    name: str = "broadcast"

    @abstractmethod
    def ordering_violations(self, execution: Execution) -> list[str]:
        """Return violations of the abstraction's ordering predicate."""

    def liveness_violations(self, execution: Execution) -> list[str]:
        """Extra liveness clauses beyond BC-Global-CS-Termination."""
        return []

    def admits(
        self, execution: Execution, *, assume_complete: bool = True
    ) -> SpecVerdict:
        """Decide admissibility of ``execution`` (full verdict)."""
        verdict = check_base_properties(
            execution, assume_complete=assume_complete
        )
        verdict.spec_name = self.name
        verdict.ordering = self.ordering_violations(execution)
        if assume_complete:
            verdict.liveness = self.liveness_violations(execution)
        return verdict

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

"""Delivery-order relations over broadcast-level executions.

These relations are the vocabulary in which the ordering predicates of the
broadcast abstractions (Section 3.2 and the Introduction) are written:

* per-process delivery positions;
* *uniform* pair order — two messages delivered in the same relative order
  by every process that delivers both (the building block of k-BO and
  Total-Order broadcast);
* the *disagreement graph*, whose (k+1)-cliques are exactly the witnesses
  violating k-BO Broadcast;
* the causal precedence relation among broadcast messages;
* first-delivered sets (the Introduction's "simplistic" broadcast).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Mapping

import networkx as nx

from .execution import Execution
from .message import Message, MessageId

__all__ = [
    "delivery_positions",
    "pair_orders",
    "uniformly_ordered",
    "disagreement_graph",
    "kbo_violation_witness",
    "causal_precedence",
    "first_delivered_set",
]


def delivery_positions(
    execution: Execution,
) -> Mapping[int, Mapping[MessageId, int]]:
    """For each process, map each delivered message to its delivery rank."""
    positions: dict[int, dict[MessageId, int]] = {}
    for process, sequence in execution.delivery_sequences.items():
        positions[process] = {
            message.uid: rank for rank, message in enumerate(sequence)
        }
    return positions


def pair_orders(
    positions: Mapping[int, Mapping[MessageId, int]],
    first: MessageId,
    second: MessageId,
) -> set[int]:
    """Relative orders observed for a pair of messages.

    Returns a subset of ``{-1, +1}``: ``+1`` if some process delivers
    ``first`` before ``second``, ``-1`` for the converse.  Processes that
    deliver at most one of the two contribute nothing.
    """
    observed: set[int] = set()
    for ranks in positions.values():
        if first in ranks and second in ranks:
            observed.add(1 if ranks[first] < ranks[second] else -1)
    return observed


def uniformly_ordered(
    positions: Mapping[int, Mapping[MessageId, int]],
    first: MessageId,
    second: MessageId,
) -> bool:
    """True iff all processes delivering both messages agree on their order.

    Vacuously true when no process delivers both.
    """
    return len(pair_orders(positions, first, second)) <= 1


def disagreement_graph(execution: Execution) -> nx.Graph:
    """Graph on broadcast messages; edges join non-uniformly-ordered pairs.

    A (k+1)-clique in this graph is a set of k+1 messages *no* two of which
    are delivered in the same order by all processes — i.e. a violation
    witness for k-BO Broadcast, and for k = 1 an edge is a violation of
    Total-Order Broadcast.
    """
    positions = delivery_positions(execution)
    graph = nx.Graph()
    uids = [m.uid for m in execution.broadcast_messages]
    graph.add_nodes_from(uids)
    for first, second in combinations(uids, 2):
        if not uniformly_ordered(positions, first, second):
            graph.add_edge(first, second)
    return graph


def kbo_violation_witness(
    execution: Execution, k: int
) -> tuple[MessageId, ...] | None:
    """Find k+1 messages among which no pair is uniformly ordered.

    Returns a witness tuple (a violation of the k-BO ordering property), or
    ``None`` when the execution satisfies k-BO ordering.
    """
    graph = disagreement_graph(execution)
    for clique in nx.find_cliques(graph):
        if len(clique) >= k + 1:
            return tuple(sorted(clique)[: k + 1])
    return None


def causal_precedence(execution: Execution) -> nx.DiGraph:
    """The causal ("happened-before") precedence among broadcast messages.

    ``m → m'`` iff the broadcaster of ``m'`` had, before invoking
    ``broadcast(m')``, either invoked ``broadcast(m)`` itself or delivered
    ``m``; closed transitively.  This is the message-level projection of
    Lamport's happened-before relation used by Causal Broadcast.
    """
    graph = nx.DiGraph()
    known: dict[int, set[MessageId]] = {}
    for message in execution.broadcast_messages:
        graph.add_node(message.uid)
    for step in execution:
        if step.is_invoke():
            uid = step.action.message.uid
            for prior in known.get(step.process, ()):  # direct edges
                graph.add_edge(prior, uid)
            known.setdefault(step.process, set()).add(uid)
        elif step.is_deliver():
            known.setdefault(step.process, set()).add(
                step.action.message.uid
            )
    return nx.transitive_closure_dag(graph) if nx.is_directed_acyclic_graph(
        graph
    ) else nx.transitive_closure(graph)


def first_delivered_set(execution: Execution) -> set[MessageId]:
    """Messages that are delivered first by at least one process."""
    firsts: set[MessageId] = set()
    for process in range(execution.n):
        head = execution.first_delivered(process)
        if head is not None:
            firsts.add(head.uid)
    return firsts

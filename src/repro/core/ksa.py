"""Checkers for the k-set-agreement object properties (Section 4.1).

k-SA is a one-shot agreement object with a single ``propose`` operation:

* **k-SA-Validity** — every decided value was proposed (on that object);
* **k-SA-Agreement** — at most ``k`` distinct values are decided per object;
* **k-SA-Termination** — every correct proposer eventually decides.

As with the channel axioms, the two safety properties are absolute and the
liveness property is checked under an ``assume_complete`` flag.  A fourth,
structural property is enforced: each process proposes at most once per
object (the problem's one-shot nature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .actions import DecideAction, ProposeAction
from .execution import Execution

__all__ = ["KsaReport", "check_ksa"]


@dataclass
class KsaReport:
    """Result of checking the k-SA properties on one execution."""

    k: int
    validity: list[str] = field(default_factory=list)
    agreement: list[str] = field(default_factory=list)
    termination: list[str] = field(default_factory=list)
    one_shot: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.validity or self.agreement or self.termination
            or self.one_shot
        )

    def all_violations(self) -> list[str]:
        return (
            self.validity + self.agreement + self.termination + self.one_shot
        )

    def __str__(self) -> str:
        if self.ok:
            return (
                f"{self.k}-SA: Validity ✓  Agreement ✓  Termination ✓  "
                f"One-shot ✓"
            )
        return f"{self.k}-SA: " + "; ".join(self.all_violations())


def check_ksa(
    execution: Execution, k: int, *, assume_complete: bool = True
) -> KsaReport:
    """Check the three k-SA properties (plus one-shotness) per object.

    All k-SA objects appearing in the execution (named by their ``ksa``
    string) are checked independently against the same ``k``.
    """
    report = KsaReport(k=k)
    proposals: dict[str, dict[int, list[Hashable]]] = {}
    decisions: dict[str, dict[int, Hashable]] = {}

    for index, step in enumerate(execution):
        action = step.action
        if isinstance(action, ProposeAction):
            per_process = proposals.setdefault(action.ksa, {})
            history = per_process.setdefault(step.process, [])
            history.append(action.value)
            if len(history) > 1:
                report.one_shot.append(
                    f"step {index}: p{step.process} proposes twice on "
                    f"{action.ksa}"
                )
        elif isinstance(action, DecideAction):
            proposed_here = {
                value
                for values in proposals.get(action.ksa, {}).values()
                for value in values
            }
            if action.value not in proposed_here:
                report.validity.append(
                    f"step {index}: p{step.process} decides "
                    f"{action.value!r} on {action.ksa}, never proposed"
                )
            decisions.setdefault(action.ksa, {})[step.process] = action.value

    for ksa, decided in decisions.items():
        distinct = set(decided.values())
        if len(distinct) > k:
            report.agreement.append(
                f"{ksa}: {len(distinct)} distinct decisions "
                f"{sorted(map(repr, distinct))} > k={k}"
            )

    if assume_complete:
        correct = execution.correct
        for ksa, per_process in proposals.items():
            for process in per_process:
                if process in correct and process not in decisions.get(
                    ksa, {}
                ):
                    report.termination.append(
                        f"{ksa}: correct p{process} proposed but never "
                        f"decided"
                    )
    return report

"""Steps: the atoms of executions.

A step is the pair ``⟨p_i : a⟩`` of Section 2 — a process identifier and an
action taken by that process.
"""

from __future__ import annotations

from dataclasses import dataclass

from .actions import (
    Action,
    BROADCAST_ACTIONS,
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DeliverAction,
    DeliverSetAction,
    ProposeAction,
    ReceiveAction,
    SendAction,
)

__all__ = ["Step"]


@dataclass(frozen=True)
class Step:
    """One step ``⟨p_i : a⟩`` of an execution."""

    process: int
    action: Action

    def is_broadcast_event(self) -> bool:
        """True if this step belongs to the broadcast-level projection."""
        return isinstance(self.action, BROADCAST_ACTIONS)

    def is_invoke(self) -> bool:
        return isinstance(self.action, BroadcastInvoke)

    def is_return(self) -> bool:
        return isinstance(self.action, BroadcastReturn)

    def is_deliver(self) -> bool:
        return isinstance(self.action, DeliverAction)

    def is_deliver_set(self) -> bool:
        return isinstance(self.action, DeliverSetAction)

    def is_send(self) -> bool:
        return isinstance(self.action, SendAction)

    def is_receive(self) -> bool:
        return isinstance(self.action, ReceiveAction)

    def is_propose(self) -> bool:
        return isinstance(self.action, ProposeAction)

    def is_crash(self) -> bool:
        return isinstance(self.action, CrashAction)

    def __str__(self) -> str:
        return f"<p{self.process}: {self.action}>"

"""Execution serialization: traces to and from JSON.

Recorded executions are first-class artifacts — the adversarial schedule
behind Figure 1, a violating schedule found by the explorer, a register
history — and deserve to be storable, diffable and replayable outside a
Python session.  This module provides a faithful JSON round-trip:

* every step becomes ``{"p": process, "a": {action...}}``;
* message identities and point-to-point identities keep their structure;
* contents survive as long as they are built from JSON scalars, tuples,
  lists, dicts and :class:`~repro.core.message.Message` objects (the
  shapes the library's algorithms use); tuples and messages are tagged
  so the round-trip is exact (tuples do not degrade to lists).

``loads(dumps(execution)) == execution`` for every execution the library
produces — property-tested in ``tests/core/test_serialize.py``.
"""

from __future__ import annotations

import json
from typing import Any

from .actions import (
    Action,
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DecideAction,
    DeliverAction,
    DeliverSetAction,
    LocalAction,
    PointToPointId,
    ProposeAction,
    ReceiveAction,
    SendAction,
)
from .execution import Execution
from .message import Message, MessageId
from .steps import Step

__all__ = ["dumps", "loads", "to_jsonable", "from_jsonable"]


def _encode_content(value: Any) -> Any:
    if isinstance(value, Message):
        return {
            "__msg__": {
                "sender": value.uid.sender,
                "seq": value.uid.seq,
                "content": _encode_content(value.content),
            }
        }
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_content(v) for v in value]}
    if isinstance(value, list):
        return [_encode_content(v) for v in value]
    if isinstance(value, dict):
        return {
            "__dict__": [
                [_encode_content(k), _encode_content(v)]
                for k, v in value.items()
            ]
        }
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"content of type {type(value).__name__} is not serializable"
    )


def _decode_content(value: Any) -> Any:
    if isinstance(value, dict):
        if "__msg__" in value:
            raw = value["__msg__"]
            return Message(
                MessageId(raw["sender"], raw["seq"]),
                _decode_content(raw["content"]),
            )
        if "__tuple__" in value:
            return tuple(_decode_content(v) for v in value["__tuple__"])
        if "__dict__" in value:
            return {
                _decode_content(k): _decode_content(v)
                for k, v in value["__dict__"]
            }
        raise ValueError(f"unknown tagged content: {list(value)}")
    if isinstance(value, list):
        return [_decode_content(v) for v in value]
    return value


def _encode_p2p(p2p: PointToPointId) -> list:
    return [p2p.sender, p2p.receiver, p2p.seq]


def _decode_p2p(raw: list) -> PointToPointId:
    return PointToPointId(*raw)


_SIMPLE_MESSAGE_ACTIONS = {
    "invoke": BroadcastInvoke,
    "return": BroadcastReturn,
    "deliver": DeliverAction,
}


def _encode_action(action: Action) -> dict:
    if isinstance(action, BroadcastInvoke):
        return {"t": "invoke", "m": _encode_content(action.message)}
    if isinstance(action, BroadcastReturn):
        return {"t": "return", "m": _encode_content(action.message)}
    if isinstance(action, DeliverAction):
        return {"t": "deliver", "m": _encode_content(action.message)}
    if isinstance(action, DeliverSetAction):
        return {
            "t": "deliver_set",
            "ms": [_encode_content(m) for m in action.messages],
        }
    if isinstance(action, SendAction):
        return {
            "t": "send",
            "ch": _encode_p2p(action.p2p),
            "pl": _encode_content(action.payload),
        }
    if isinstance(action, ReceiveAction):
        return {
            "t": "receive",
            "ch": _encode_p2p(action.p2p),
            "pl": _encode_content(action.payload),
        }
    if isinstance(action, ProposeAction):
        return {
            "t": "propose",
            "o": action.ksa,
            "v": _encode_content(action.value),
        }
    if isinstance(action, DecideAction):
        return {
            "t": "decide",
            "o": action.ksa,
            "v": _encode_content(action.value),
        }
    if isinstance(action, CrashAction):
        return {"t": "crash"}
    if isinstance(action, LocalAction):
        return {"t": "local", "l": action.label}
    raise TypeError(f"unknown action {action!r}")


def _decode_action(raw: dict) -> Action:
    kind = raw["t"]
    if kind in _SIMPLE_MESSAGE_ACTIONS:
        return _SIMPLE_MESSAGE_ACTIONS[kind](_decode_content(raw["m"]))
    if kind == "deliver_set":
        return DeliverSetAction(
            tuple(_decode_content(m) for m in raw["ms"])
        )
    if kind == "send":
        return SendAction(
            _decode_p2p(raw["ch"]), _decode_content(raw["pl"])
        )
    if kind == "receive":
        return ReceiveAction(
            _decode_p2p(raw["ch"]), _decode_content(raw["pl"])
        )
    if kind == "propose":
        return ProposeAction(raw["o"], _decode_content(raw["v"]))
    if kind == "decide":
        return DecideAction(raw["o"], _decode_content(raw["v"]))
    if kind == "crash":
        return CrashAction()
    if kind == "local":
        return LocalAction(raw.get("l", ""))
    raise ValueError(f"unknown action tag {kind!r}")


def to_jsonable(execution: Execution) -> dict:
    """The execution as plain JSON-compatible data."""
    return {
        "version": 1,
        "n": execution.n,
        "steps": [
            {"p": step.process, "a": _encode_action(step.action)}
            for step in execution
        ],
    }


def from_jsonable(data: dict) -> Execution:
    """Rebuild an execution from :func:`to_jsonable` data."""
    if data.get("version") != 1:
        raise ValueError(f"unsupported trace version {data.get('version')}")
    steps = [
        Step(raw["p"], _decode_action(raw["a"]))
        for raw in data["steps"]
    ]
    return Execution.of(steps, data["n"])


def dumps(execution: Execution, **json_kwargs: Any) -> str:
    """Serialize an execution to a JSON string."""
    return json.dumps(to_jsonable(execution), **json_kwargs)


def loads(text: str) -> Execution:
    """Deserialize an execution from a JSON string."""
    return from_jsonable(json.loads(text))

"""Executions and the two symmetry transformations of the paper.

An :class:`Execution` is a finite sequence of :class:`~repro.core.steps.Step`
objects over processes ``p_0 … p_{n-1}``.  Besides the usual queries
(projections per process, delivery sequences, crash status), it implements
the two transformations on which the paper's Theorem 1 rests:

* :meth:`Execution.restrict` — the restriction of an execution onto a subset
  of its messages (Definition 2, compositionality);
* :meth:`Execution.rename` — the injective substitution of messages
  (Definition 3, content-neutrality);

plus :meth:`Execution.broadcast_projection`, the projection β of
Definition 4 keeping only broadcast-abstraction events.

Executions are immutable; all transformations return new objects.

.. note::
   Process identifiers are 0-based in the library (``p_0 … p_{n-1}``) while
   the paper uses 1-based ``p_1 … p_n``.  Renderers in
   :mod:`repro.analysis.report` convert back to the paper's convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import (
    Callable,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
)

from .actions import (
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DecideAction,
    DeliverAction,
    DeliverSetAction,
    ProposeAction,
    ReceiveAction,
    SendAction,
)
from .message import Message, MessageId, Renaming
from .steps import Step

__all__ = ["Execution", "WellFormednessError"]


class WellFormednessError(Exception):
    """Raised when an execution violates Definition 1 (well-formedness)."""


@dataclass(frozen=True)
class Execution:
    """An immutable, finite execution of the CAMP_n[H] model.

    Parameters
    ----------
    steps:
        The ordered sequence of steps.
    n:
        The number of processes in the system.  Steps may only involve
        processes ``0 … n-1``.
    """

    steps: tuple[Step, ...]
    n: int

    @staticmethod
    def of(steps: Iterable[Step], n: int) -> "Execution":
        """Build an execution from any iterable of steps."""
        return Execution(tuple(steps), n)

    @staticmethod
    def empty(n: int) -> "Execution":
        """The empty execution ε over ``n`` processes."""
        return Execution((), n)

    # ------------------------------------------------------------------
    # Sequence-like behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Step:
        return self.steps[index]

    def append(self, step: Step) -> "Execution":
        """Return the execution extended by one step (``α ⊕ step``)."""
        return Execution(self.steps + (step,), self.n)

    def extend(self, steps: Iterable[Step]) -> "Execution":
        """Return the execution extended by several steps."""
        return Execution(self.steps + tuple(steps), self.n)

    def prefix(self, length: int) -> "Execution":
        """The prefix consisting of the first ``length`` steps."""
        return Execution(self.steps[:length], self.n)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @cached_property
    def processes(self) -> tuple[int, ...]:
        """Processes that take at least one step, in first-step order."""
        seen: dict[int, None] = {}
        for step in self.steps:
            seen.setdefault(step.process, None)
        return tuple(seen)

    def steps_of(self, process: int) -> tuple[Step, ...]:
        """The subsequence of steps taken by ``process``."""
        return tuple(s for s in self.steps if s.process == process)

    @cached_property
    def crashed(self) -> frozenset[int]:
        """Processes that crash in this execution (take a crash step)."""
        return frozenset(s.process for s in self.steps if s.is_crash())

    @cached_property
    def correct(self) -> frozenset[int]:
        """Processes of the system that never crash in this execution."""
        return frozenset(range(self.n)) - self.crashed

    @cached_property
    def broadcast_messages(self) -> tuple[Message, ...]:
        """All messages B-broadcast in the execution, in invocation order."""
        return tuple(
            s.action.message for s in self.steps if s.is_invoke()
        )

    @cached_property
    def message_by_uid(self) -> Mapping[MessageId, Message]:
        """Index of broadcast messages by identity."""
        return {m.uid: m for m in self.broadcast_messages}

    def broadcasts_by(self, process: int) -> tuple[Message, ...]:
        """Messages B-broadcast by ``process``, in invocation order."""
        return tuple(
            m for m in self.broadcast_messages if m.sender == process
        )

    @cached_property
    def delivery_sequences(self) -> Mapping[int, tuple[Message, ...]]:
        """For each process, the sequence of messages it B-delivers.

        Set deliveries (SCD Broadcast) are flattened in uid order; the
        set structure itself is available via
        :attr:`set_delivery_sequences`.
        """
        sequences: dict[int, list[Message]] = {}
        for step in self.steps:
            if step.is_deliver():
                sequences.setdefault(step.process, []).append(
                    step.action.message
                )
            elif step.is_deliver_set():
                sequences.setdefault(step.process, []).extend(
                    step.action.messages
                )
        return {p: tuple(ms) for p, ms in sequences.items()}

    @cached_property
    def set_delivery_sequences(
        self,
    ) -> Mapping[int, tuple[tuple[Message, ...], ...]]:
        """For each process, its sequence of delivered *sets*.

        Individual deliveries count as singleton sets, so SCD-style
        predicates can be evaluated uniformly on mixed executions.
        """
        sequences: dict[int, list[tuple[Message, ...]]] = {}
        for step in self.steps:
            if step.is_deliver():
                sequences.setdefault(step.process, []).append(
                    (step.action.message,)
                )
            elif step.is_deliver_set():
                sequences.setdefault(step.process, []).append(
                    step.action.messages
                )
        return {p: tuple(sets) for p, sets in sequences.items()}

    def deliveries_of(self, process: int) -> tuple[Message, ...]:
        """The delivery sequence of one process (empty if it delivers none)."""
        return self.delivery_sequences.get(process, ())

    def first_delivered(self, process: int) -> Message | None:
        """The first message delivered by ``process``, or ``None``."""
        sequence = self.deliveries_of(process)
        return sequence[0] if sequence else None

    @cached_property
    def decisions(self) -> Mapping[str, Mapping[int, Hashable]]:
        """``decisions[ksa][p]`` = value decided by ``p`` on object ``ksa``."""
        decided: dict[str, dict[int, Hashable]] = {}
        for step in self.steps:
            if isinstance(step.action, DecideAction):
                decided.setdefault(step.action.ksa, {})[step.process] = (
                    step.action.value
                )
        return decided

    @cached_property
    def proposals(self) -> Mapping[str, Mapping[int, Hashable]]:
        """``proposals[ksa][p]`` = value proposed by ``p`` on object ``ksa``."""
        proposed: dict[str, dict[int, Hashable]] = {}
        for step in self.steps:
            if isinstance(step.action, ProposeAction):
                proposed.setdefault(step.action.ksa, {})[step.process] = (
                    step.action.value
                )
        return proposed

    # ------------------------------------------------------------------
    # Transformations (the paper's symmetry operations)
    # ------------------------------------------------------------------

    def broadcast_projection(self) -> "Execution":
        """β: keep only broadcast invocations, returns and deliveries.

        This is the projection used by Definition 4 to turn an execution of
        the implementation algorithm B (in CAMP[k-SA]) into an execution of
        the abstraction B.  Crash steps are retained so that the projected
        execution still records which processes are faulty (the paper keeps
        this information implicitly via step finiteness).
        """
        return Execution(
            tuple(
                s
                for s in self.steps
                if s.is_broadcast_event() or s.is_crash()
            ),
            self.n,
        )

    def restrict(self, uids: Iterable[MessageId]) -> "Execution":
        """Definition 2: restriction of the execution onto a message subset.

        Keeps every non-broadcast step, and keeps a broadcast-level step iff
        its message belongs to ``uids``.  Compositionality of an abstraction
        states that this transformation preserves admissibility.
        """
        keep = frozenset(uids)
        kept_steps: list[Step] = []
        for step in self.steps:
            if step.is_deliver_set():
                remaining = tuple(
                    m for m in step.action.messages if m.uid in keep
                )
                if remaining:
                    kept_steps.append(
                        Step(step.process, DeliverSetAction(remaining))
                    )
            elif (
                not step.is_broadcast_event()
                or step.action.message.uid in keep
            ):
                kept_steps.append(step)
        return Execution(tuple(kept_steps), self.n)

    def rename(self, renaming: Renaming) -> "Execution":
        """Definition 3: replace messages through an injective substitution.

        Every broadcast-level occurrence of a message ``m`` is replaced by
        ``r(m)`` (same identity skeleton, substituted content).  Injectivity
        on the *renamed contents* is enforced: two distinct messages may not
        be mapped to equal (uid, content) pairs — which cannot happen here
        because identities are preserved, so the substitution is always
        injective on messages; we still reject mappings for unknown uids to
        surface bugs early.
        """
        unknown = [
            uid for uid, _ in renaming.items()
            if uid not in self.message_by_uid
        ]
        if unknown:
            raise ValueError(f"renaming mentions unknown messages: {unknown}")

        def rename_step(step: Step) -> Step:
            action = step.action
            if isinstance(action, BroadcastInvoke):
                return Step(
                    step.process,
                    BroadcastInvoke(renaming.apply(action.message)),
                )
            if isinstance(action, BroadcastReturn):
                return Step(
                    step.process,
                    BroadcastReturn(renaming.apply(action.message)),
                )
            if isinstance(action, DeliverAction):
                return Step(
                    step.process,
                    DeliverAction(renaming.apply(action.message)),
                )
            if isinstance(action, DeliverSetAction):
                return Step(
                    step.process,
                    DeliverSetAction(
                        tuple(
                            renaming.apply(m) for m in action.messages
                        )
                    ),
                )
            return step

        return Execution(
            tuple(rename_step(s) for s in self.steps), self.n
        )

    def map_processes(self, mapping: Mapping[int, int]) -> "Execution":
        """Relabel process identifiers (used to embed CAMP_{k+1} in CAMP_n)."""

        def map_step(step: Step) -> Step:
            return Step(mapping.get(step.process, step.process), step.action)

        return Execution(tuple(map_step(s) for s in self.steps), self.n)

    def with_crashes(self, processes: Iterable[int]) -> "Execution":
        """Prepend crash steps for ``processes`` (crashed before any step)."""
        crashes = tuple(Step(p, CrashAction()) for p in processes)
        return Execution(crashes + self.steps, self.n)

    # ------------------------------------------------------------------
    # Well-formedness (Definition 1)
    # ------------------------------------------------------------------

    def check_well_formed(self) -> list[str]:
        """Check Definition 1; return a list of violation descriptions.

        The three conditions checked:

        1. only processes ``0 … n-1`` take steps;
        2. per process, operation invocations alternate with their
           responses (no nested/overlapping ``broadcast`` or ``propose``);
        3. no process takes a step after crashing.

        (The third bullet of Definition 1 — conformance of the steps
        *between* invocation and response to the algorithm's code — is
        enforced operationally by the step-machine drivers in
        :mod:`repro.runtime`, which only ever emit algorithm-produced
        steps.)
        """
        violations: list[str] = []
        open_broadcast: dict[int, Message | None] = {}
        open_propose: dict[int, str | None] = {}
        halted: set[int] = set()
        for index, step in enumerate(self.steps):
            p = step.process
            if not 0 <= p < self.n:
                violations.append(
                    f"step {index}: process p{p} outside 0..{self.n - 1}"
                )
                continue
            if p in halted:
                violations.append(
                    f"step {index}: p{p} takes a step after crashing"
                )
            action = step.action
            if isinstance(action, CrashAction):
                halted.add(p)
            elif isinstance(action, BroadcastInvoke):
                if open_broadcast.get(p) is not None:
                    violations.append(
                        f"step {index}: p{p} invokes broadcast while a "
                        f"previous invocation is pending"
                    )
                open_broadcast[p] = action.message
            elif isinstance(action, BroadcastReturn):
                pending = open_broadcast.get(p)
                if pending is None or pending.uid != action.message.uid:
                    violations.append(
                        f"step {index}: p{p} returns from a broadcast it "
                        f"did not invoke ({action.message})"
                    )
                open_broadcast[p] = None
            elif isinstance(action, ProposeAction):
                if open_propose.get(p) is not None:
                    violations.append(
                        f"step {index}: p{p} proposes while a previous "
                        f"proposal is pending"
                    )
                open_propose[p] = action.ksa
            elif isinstance(action, DecideAction):
                pending_ksa = open_propose.get(p)
                if pending_ksa != action.ksa:
                    violations.append(
                        f"step {index}: p{p} decides on {action.ksa} "
                        f"without a pending proposal on it"
                    )
                open_propose[p] = None
        return violations

    def require_well_formed(self) -> "Execution":
        """Raise :class:`WellFormednessError` on violation; else return self."""
        violations = self.check_well_formed()
        if violations:
            raise WellFormednessError("; ".join(violations))
        return self

    # ------------------------------------------------------------------
    # Rendering helpers
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        lines = [f"Execution over {self.n} processes, {len(self)} steps:"]
        lines.extend(f"  {i:4d}. {step}" for i, step in enumerate(self.steps))
        return "\n".join(lines)

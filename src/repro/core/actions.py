"""Step actions of the CAMP_n[H] model.

An execution (Section 2 of the paper) is a sequence of steps
``⟨p_i : a⟩`` where ``a`` is an action.  This module enumerates the action
vocabulary used throughout the library:

* point-to-point primitives: :class:`SendAction` / :class:`ReceiveAction`;
* broadcast-abstraction events: :class:`BroadcastInvoke`,
  :class:`BroadcastReturn`, :class:`DeliverAction`;
* k-set-agreement operations: :class:`ProposeAction` / :class:`DecideAction`;
* failures and bookkeeping: :class:`CrashAction`, :class:`LocalAction`.

Actions are small frozen dataclasses so that steps and executions are
hashable, comparable and cheap to copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Union

from .message import Message

__all__ = [
    "PointToPointId",
    "SendAction",
    "ReceiveAction",
    "BroadcastInvoke",
    "BroadcastReturn",
    "DeliverAction",
    "DeliverSetAction",
    "ProposeAction",
    "DecideAction",
    "CrashAction",
    "LocalAction",
    "Action",
    "BROADCAST_ACTIONS",
]


@dataclass(frozen=True, order=True)
class PointToPointId:
    """Unique identity of one point-to-point message (sends are unique)."""

    sender: int
    receiver: int
    seq: int

    def __str__(self) -> str:
        return f"s[{self.sender}->{self.receiver}.{self.seq}]"


@dataclass(frozen=True)
class SendAction:
    """``send m to p_r`` — low-level emission of a point-to-point message."""

    p2p: PointToPointId
    payload: Hashable = None

    def __str__(self) -> str:
        return f"send {self.p2p} payload={self.payload!r}"


@dataclass(frozen=True)
class ReceiveAction:
    """``receive m from p_s`` — low-level reception event."""

    p2p: PointToPointId
    payload: Hashable = None

    def __str__(self) -> str:
        return f"receive {self.p2p} payload={self.payload!r}"


@dataclass(frozen=True)
class BroadcastInvoke:
    """Invocation of ``B.broadcast(m)`` by the sender of ``m``."""

    message: Message

    def __str__(self) -> str:
        return f"B.broadcast({self.message})"


@dataclass(frozen=True)
class BroadcastReturn:
    """Response (return) of a ``B.broadcast(m)`` invocation."""

    message: Message

    def __str__(self) -> str:
        return f"return B.broadcast({self.message})"


@dataclass(frozen=True)
class DeliverAction:
    """``B.deliver m from p_j`` — the origin is ``message.sender``."""

    message: Message

    @property
    def origin(self) -> int:
        return self.message.sender

    def __str__(self) -> str:
        return f"B.deliver({self.message}) from p{self.message.sender}"


@dataclass(frozen=True)
class DeliverSetAction:
    """``B.deliver S`` — set-constrained delivery of a message *set*.

    SCD Broadcast and k-SCD Broadcast (the paper's "Remark on
    Expressiveness", Section 3.1) deliver messages within unordered sets
    rather than individually.  ``messages`` is stored as a sorted tuple
    for determinism; set semantics (no internal order) is what the SCD
    ordering predicate relies on.
    """

    messages: tuple[Message, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.messages, key=lambda m: m.uid))
        object.__setattr__(self, "messages", ordered)

    def __str__(self) -> str:
        inner = ", ".join(str(m) for m in self.messages)
        return f"B.deliver_set({{{inner}}})"


@dataclass(frozen=True)
class ProposeAction:
    """``ksa.propose(v)`` on the k-SA object named ``ksa``."""

    ksa: str
    value: Hashable

    def __str__(self) -> str:
        return f"{self.ksa}.propose({self.value!r})"


@dataclass(frozen=True)
class DecideAction:
    """``ksa.decide(w)`` — the response of the matching propose."""

    ksa: str
    value: Hashable

    def __str__(self) -> str:
        return f"{self.ksa}.decide({self.value!r})"


@dataclass(frozen=True)
class CrashAction:
    """The process halts; it takes no further step in the execution."""

    def __str__(self) -> str:
        return "crash"


@dataclass(frozen=True)
class LocalAction:
    """An internal computation step, labeled for diagnostics only."""

    label: str = ""

    def __str__(self) -> str:
        return f"local({self.label})"


Action = Union[
    SendAction,
    ReceiveAction,
    BroadcastInvoke,
    BroadcastReturn,
    DeliverAction,
    DeliverSetAction,
    ProposeAction,
    DecideAction,
    CrashAction,
    LocalAction,
]

#: The action types that constitute the broadcast-level projection
#: (Definition 4's execution β keeps exactly these).
BROADCAST_ACTIONS = (
    BroadcastInvoke,
    BroadcastReturn,
    DeliverAction,
    DeliverSetAction,
)

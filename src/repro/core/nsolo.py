"""N-solo executions (Definition 5) — detection and verification.

An execution β of ``CAMP_n[B]`` is *N-solo* if for each process ``p_i``
there exist N messages broadcast by ``p_i`` such that every process
delivers all of its own chosen messages before delivering any chosen
message of another process.

The N-solo property is the pivot of the paper: Lemma 9 shows a broadcast
abstraction equivalent to k-SA admits no N-solo execution for some N,
while Lemma 10 shows any abstraction implementable on k-SA admits N-solo
executions for every N.

Verification of a candidate witness is exact (:func:`verify_witness`).
Witness *search* is NP-hard in general; :func:`find_witness` applies the
strategies that cover the executions arising in the paper's construction
(private-message sets, earliest-N and latest-N own deliveries), falling
back to bounded exhaustive search on small executions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .execution import Execution
from .message import MessageId

__all__ = ["NSoloWitness", "verify_witness", "find_witness", "is_n_solo"]


@dataclass(frozen=True)
class NSoloWitness:
    """A candidate witness for Definition 5: N chosen messages per process."""

    n_value: int
    chosen: Mapping[int, tuple[MessageId, ...]]

    def __str__(self) -> str:
        rows = ", ".join(
            f"p{p}: [{', '.join(map(str, uids))}]"
            for p, uids in sorted(self.chosen.items())
        )
        return f"N-solo witness (N={self.n_value}): {rows}"


def verify_witness(
    execution: Execution,
    witness: NSoloWitness,
    processes: Sequence[int] | None = None,
) -> list[str]:
    """Exactly check a witness against Definition 5; return violations.

    ``processes`` restricts which processes must carry witness sets
    (defaults to every process of the system).
    """
    violations: list[str] = []
    participants = (
        list(processes) if processes is not None else list(range(execution.n))
    )
    positions = {
        p: {m.uid: r for r, m in enumerate(execution.deliveries_of(p))}
        for p in participants
    }
    owners = {
        uid: owner
        for owner, uids in witness.chosen.items()
        for uid in uids
    }
    for p in participants:
        chosen = witness.chosen.get(p, ())
        if len(chosen) != witness.n_value:
            violations.append(
                f"p{p} has {len(chosen)} chosen messages, expected "
                f"{witness.n_value}"
            )
            continue
        for uid in chosen:
            if uid not in execution.message_by_uid:
                violations.append(f"p{p}: chosen {uid} was never broadcast")
            elif execution.message_by_uid[uid].sender != p:
                violations.append(
                    f"p{p}: chosen {uid} was broadcast by "
                    f"p{execution.message_by_uid[uid].sender}"
                )
        own_ranks = [positions[p].get(uid) for uid in chosen]
        if any(rank is None for rank in own_ranks):
            missing = [
                str(uid)
                for uid, rank in zip(chosen, own_ranks)
                if rank is None
            ]
            violations.append(
                f"p{p} never delivers its own chosen {', '.join(missing)}"
            )
            continue
        last_own = max(own_ranks)
        for uid, rank in positions[p].items():
            owner = owners.get(uid)
            if owner is not None and owner != p and rank < last_own:
                violations.append(
                    f"p{p} delivers p{owner}'s chosen {uid} (rank {rank}) "
                    f"before finishing its own chosen messages "
                    f"(last at rank {last_own})"
                )
    return violations


def _candidate_sets(
    execution: Execution, process: int, n_value: int
) -> list[tuple[MessageId, ...]]:
    """Heuristic candidate witness sets for one process, best first."""
    own_delivered = [
        m.uid
        for m in execution.deliveries_of(process)
        if m.sender == process
    ]
    delivered_elsewhere = {
        m.uid
        for p, sequence in execution.delivery_sequences.items()
        if p != process
        for m in sequence
    }
    private = [u for u in own_delivered if u not in delivered_elsewhere]
    candidates: list[tuple[MessageId, ...]] = []
    if len(private) >= n_value:
        candidates.append(tuple(private[:n_value]))
        candidates.append(tuple(private[-n_value:]))
    if len(own_delivered) >= n_value:
        candidates.append(tuple(own_delivered[:n_value]))
        candidates.append(tuple(own_delivered[-n_value:]))
    unique: list[tuple[MessageId, ...]] = []
    for candidate in candidates:
        if candidate not in unique:
            unique.append(candidate)
    return unique


def find_witness(
    execution: Execution,
    n_value: int,
    processes: Sequence[int] | None = None,
    *,
    max_combinations: int = 4096,
) -> NSoloWitness | None:
    """Search for an N-solo witness; ``None`` if none is found.

    The search first tries the heuristic candidate sets per process
    (sufficient for all executions produced by Algorithm 1), then falls
    back to trying up to ``max_combinations`` elements of their product.
    """
    participants = (
        list(processes) if processes is not None else list(range(execution.n))
    )
    per_process = {
        p: _candidate_sets(execution, p, n_value) for p in participants
    }
    if any(not sets for sets in per_process.values()):
        return None
    combos = itertools.product(*(per_process[p] for p in participants))
    for combo in itertools.islice(combos, max_combinations):
        witness = NSoloWitness(n_value, dict(zip(participants, combo)))
        if not verify_witness(execution, witness, participants):
            return witness
    return None


def is_n_solo(
    execution: Execution,
    n_value: int,
    processes: Sequence[int] | None = None,
) -> bool:
    """True iff the execution is N-solo (a witness can be found)."""
    return find_witness(execution, n_value, processes) is not None

"""Checkers for the send/receive channel axioms of CAMP_n (Section 2).

The communication model is a complete network of reliable, non-FIFO,
asynchronous uni-directional channels, governed by three properties:

* **SR-Validity** — every reception matches a prior emission;
* **SR-No-Duplication** — no point-to-point message is received twice;
* **SR-Termination** — a message sent to a correct process is eventually
  received.

Safety properties (the first two) are absolute.  SR-Termination is a
liveness property; on a finite execution it is checked under the reading
"the execution is complete", i.e. every message sent to a correct process
has been received *within* the prefix.  Pass ``assume_complete=False`` to
skip the liveness check (useful on prefixes of ongoing runs).

Two entry points share one implementation:

* :func:`check_channels` — one-shot check of a whole execution;
* :class:`ChannelTracker` — the same check fed *step deltas*, for callers
  that extend an execution incrementally (the schedule explorer evaluates
  channel properties along a DFS branch without rescanning the prefix at
  every terminal).  Trackers are forkable at branch points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .actions import CrashAction, PointToPointId, ReceiveAction, SendAction
from .execution import Execution
from .steps import Step

__all__ = ["ChannelReport", "ChannelTracker", "check_channels"]


@dataclass
class ChannelReport:
    """Result of checking the three SR properties on one execution."""

    validity: list[str] = field(default_factory=list)
    no_duplication: list[str] = field(default_factory=list)
    termination: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no property is violated."""
        return not (self.validity or self.no_duplication or self.termination)

    def all_violations(self) -> list[str]:
        return self.validity + self.no_duplication + self.termination

    def __str__(self) -> str:
        if self.ok:
            return "channels: SR-Validity ✓  SR-No-Duplication ✓  SR-Termination ✓"
        return "channels: " + "; ".join(self.all_violations())


class ChannelTracker:
    """Incremental SR-property checker over a growing step sequence.

    Feed steps in execution order through :meth:`observe`; produce the
    report of the sequence observed so far with :meth:`report`.  The
    safety properties (validity, no-duplication) are maintained per step;
    SR-Termination is evaluated only when a report is requested, from the
    set of still-unreceived emissions.

    :meth:`fork` snapshots the tracker in O(observed emissions), which is
    what lets the schedule explorer check channel axioms along every
    branch of its search tree while scanning every step exactly once per
    tree *edge* instead of once per terminal-times-depth.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._index = 0
        self._sent_before: dict[PointToPointId, int] = {}
        self._received_at: dict[PointToPointId, int] = {}
        self._crashed: set[int] = set()
        self._validity: list[str] = []
        self._no_duplication: list[str] = []

    def observe(self, step: Step) -> None:
        """Account one more step (the next step of the execution)."""
        index = self._index
        self._index += 1
        action = step.action
        if isinstance(action, SendAction):
            first = self._sent_before.get(action.p2p)
            if first is not None:
                # Keep the first emission as the channel's reference point:
                # later receptions and the termination check must diagnose
                # against the emission that actually put the message in
                # flight, not against the (already illegal) duplicate.
                self._validity.append(
                    f"step {index}: duplicate emission of {action.p2p} "
                    f"(first emitted at step {first})"
                )
            if action.p2p.sender != step.process:
                self._validity.append(
                    f"step {index}: p{step.process} sends a message whose "
                    f"declared sender is p{action.p2p.sender}"
                )
            if first is None:
                self._sent_before[action.p2p] = index
        elif isinstance(action, ReceiveAction):
            if action.p2p.receiver != step.process:
                self._validity.append(
                    f"step {index}: p{step.process} receives a message "
                    f"addressed to p{action.p2p.receiver}"
                )
            if action.p2p not in self._sent_before:
                self._validity.append(
                    f"step {index}: {action.p2p} received but never sent"
                )
            if action.p2p in self._received_at:
                self._no_duplication.append(
                    f"step {index}: {action.p2p} received again (first at "
                    f"step {self._received_at[action.p2p]})"
                )
            else:
                self._received_at[action.p2p] = index
        elif isinstance(action, CrashAction):
            self._crashed.add(step.process)

    def observe_all(self, steps: "list[Step] | tuple[Step, ...]") -> None:
        """Account a contiguous batch of steps."""
        for step in steps:
            self.observe(step)

    def fork(self) -> "ChannelTracker":
        """An independent tracker continuing from the current state."""
        clone = ChannelTracker(self.n)
        clone._index = self._index
        clone._sent_before = dict(self._sent_before)
        clone._received_at = dict(self._received_at)
        clone._crashed = set(self._crashed)
        clone._validity = list(self._validity)
        clone._no_duplication = list(self._no_duplication)
        return clone

    def report(self, *, assume_complete: bool = True) -> ChannelReport:
        """The :class:`ChannelReport` of the steps observed so far."""
        report = ChannelReport(
            validity=list(self._validity),
            no_duplication=list(self._no_duplication),
        )
        if assume_complete:
            for p2p in self._sent_before:
                if (
                    p2p.receiver not in self._crashed
                    and p2p not in self._received_at
                ):
                    report.termination.append(
                        f"{p2p} sent to correct p{p2p.receiver} but never "
                        f"received"
                    )
        return report


def check_channels(
    execution: Execution, *, assume_complete: bool = True
) -> ChannelReport:
    """Check SR-Validity, SR-No-Duplication and SR-Termination.

    Parameters
    ----------
    execution:
        The execution to check (full CAMP steps, not the broadcast
        projection).
    assume_complete:
        When True (default), SR-Termination is checked: every message sent
        to a correct process must have been received within the execution.
        When False only the two safety properties are checked.
    """
    tracker = ChannelTracker(execution.n)
    for step in execution:
        tracker.observe(step)
    return tracker.report(assume_complete=assume_complete)

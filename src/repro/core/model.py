"""Checkers for the send/receive channel axioms of CAMP_n (Section 2).

The communication model is a complete network of reliable, non-FIFO,
asynchronous uni-directional channels, governed by three properties:

* **SR-Validity** — every reception matches a prior emission;
* **SR-No-Duplication** — no point-to-point message is received twice;
* **SR-Termination** — a message sent to a correct process is eventually
  received.

Safety properties (the first two) are absolute.  SR-Termination is a
liveness property; on a finite execution it is checked under the reading
"the execution is complete", i.e. every message sent to a correct process
has been received *within* the prefix.  Pass ``assume_complete=False`` to
skip the liveness check (useful on prefixes of ongoing runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .actions import ReceiveAction, SendAction
from .execution import Execution

__all__ = ["ChannelReport", "check_channels"]


@dataclass
class ChannelReport:
    """Result of checking the three SR properties on one execution."""

    validity: list[str] = field(default_factory=list)
    no_duplication: list[str] = field(default_factory=list)
    termination: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no property is violated."""
        return not (self.validity or self.no_duplication or self.termination)

    def all_violations(self) -> list[str]:
        return self.validity + self.no_duplication + self.termination

    def __str__(self) -> str:
        if self.ok:
            return "channels: SR-Validity ✓  SR-No-Duplication ✓  SR-Termination ✓"
        return "channels: " + "; ".join(self.all_violations())


def check_channels(
    execution: Execution, *, assume_complete: bool = True
) -> ChannelReport:
    """Check SR-Validity, SR-No-Duplication and SR-Termination.

    Parameters
    ----------
    execution:
        The execution to check (full CAMP steps, not the broadcast
        projection).
    assume_complete:
        When True (default), SR-Termination is checked: every message sent
        to a correct process must have been received within the execution.
        When False only the two safety properties are checked.
    """
    report = ChannelReport()
    sent_before: dict[object, int] = {}
    received_at: dict[object, int] = {}

    for index, step in enumerate(execution):
        action = step.action
        if isinstance(action, SendAction):
            if action.p2p in sent_before:
                report.validity.append(
                    f"step {index}: duplicate emission of {action.p2p}"
                )
            if action.p2p.sender != step.process:
                report.validity.append(
                    f"step {index}: p{step.process} sends a message whose "
                    f"declared sender is p{action.p2p.sender}"
                )
            sent_before[action.p2p] = index
        elif isinstance(action, ReceiveAction):
            if action.p2p.receiver != step.process:
                report.validity.append(
                    f"step {index}: p{step.process} receives a message "
                    f"addressed to p{action.p2p.receiver}"
                )
            emission = sent_before.get(action.p2p)
            if emission is None:
                report.validity.append(
                    f"step {index}: {action.p2p} received but never sent"
                )
            if action.p2p in received_at:
                report.no_duplication.append(
                    f"step {index}: {action.p2p} received again (first at "
                    f"step {received_at[action.p2p]})"
                )
            else:
                received_at[action.p2p] = index

    if assume_complete:
        correct = execution.correct
        for p2p in sent_before:
            if p2p.receiver in correct and p2p not in received_at:
                report.termination.append(
                    f"{p2p} sent to correct p{p2p.receiver} but never "
                    f"received"
                )
    return report

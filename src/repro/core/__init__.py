"""Core formal objects of the paper: executions, specs, symmetries, k-SA.

This subpackage contains everything Section 2–4 of the paper manipulates
mathematically, in executable form:

* :mod:`repro.core.message` — unique messages and injective renamings;
* :mod:`repro.core.actions` / :mod:`repro.core.steps` — the step vocabulary;
* :mod:`repro.core.execution` — executions with restriction (Def. 2),
  renaming (Def. 3) and the broadcast projection (Def. 4);
* :mod:`repro.core.model` — the send/receive channel axioms;
* :mod:`repro.core.ksa` — the k-set-agreement object properties;
* :mod:`repro.core.broadcast_spec` — broadcast abstractions as predicates;
* :mod:`repro.core.symmetry` — compositionality and content-neutrality
  checkers;
* :mod:`repro.core.nsolo` — N-solo executions (Def. 5);
* :mod:`repro.core.order` — delivery-order relations used by the concrete
  specifications in :mod:`repro.specs`.
"""

from .actions import (
    Action,
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DecideAction,
    DeliverAction,
    LocalAction,
    PointToPointId,
    ProposeAction,
    ReceiveAction,
    SendAction,
)
from .broadcast_spec import BroadcastSpec, SpecVerdict, check_base_properties
from .execution import Execution, WellFormednessError
from .ksa import KsaReport, check_ksa
from .message import (
    Message,
    MessageFactory,
    MessageId,
    Renaming,
    fresh_renaming,
)
from .model import ChannelReport, ChannelTracker, check_channels
from .nsolo import NSoloWitness, find_witness, is_n_solo, verify_witness
from .steps import Step
from .symmetry import (
    SymmetryResult,
    check_compositional,
    check_content_neutral,
)

__all__ = [
    "Action",
    "BroadcastInvoke",
    "BroadcastReturn",
    "BroadcastSpec",
    "ChannelReport",
    "CrashAction",
    "DecideAction",
    "DeliverAction",
    "Execution",
    "KsaReport",
    "LocalAction",
    "Message",
    "MessageFactory",
    "MessageId",
    "NSoloWitness",
    "PointToPointId",
    "ProposeAction",
    "ReceiveAction",
    "Renaming",
    "SendAction",
    "SpecVerdict",
    "Step",
    "SymmetryResult",
    "WellFormednessError",
    "check_base_properties",
    "ChannelTracker",
    "check_channels",
    "check_compositional",
    "check_content_neutral",
    "check_ksa",
    "find_witness",
    "fresh_renaming",
    "is_n_solo",
    "verify_witness",
]

"""Runtime verifiers for Lemmas 1–8 and Lemma 10 (Section 4.2).

Each lemma of the paper's admissibility argument becomes an executable
check over an :class:`~repro.adversary.scheduler.AdversaryResult`:

====== ======================================== =========================
Lemma  paper statement                           checked on
====== ======================================== =========================
1      k-SA-Validity                             α and every γ_i
2      k-SA-Agreement                            α and every γ_i
3      k-SA-Termination                          α and every γ_i
4      SR-Validity                               α and every γ_i
5      SR-No-Duplication                         α and every γ_i
6      well-formedness (Definition 1)            α and every γ_i
7      Algorithm 1 terminates                    α is finite (witnessed)
8      SR-Termination                            α only (see footnote 1)
10     β is an N-solo execution (Definition 5)   β, exact witness check
====== ======================================== =========================

Liveness clauses on the γ_i use the crash annotations Definition 4
prescribes (every process outside {p_i, p_k} crashed initially; p_k
crashed at its cut-off), so "correct proposer decides" is evaluated
against the right correct set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ksa import check_ksa
from ..core.model import check_channels
from ..core.nsolo import verify_witness
from .scheduler import AdversaryResult

__all__ = ["LemmaReport", "check_all_lemmas"]


@dataclass
class LemmaReport:
    """Outcome of checking one lemma on one adversary run."""

    lemma: str
    statement: str
    ok: bool
    violations: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        mark = "✓" if self.ok else "✗"
        text = f"Lemma {self.lemma} ({self.statement}): {mark}"
        return text + "".join(f"\n    {v}" for v in self.violations[:5])


def check_all_lemmas(result: AdversaryResult) -> list[LemmaReport]:
    """Verify Lemmas 1–8 and 10 on one adversarial execution."""
    alpha = result.execution
    gammas = {i: result.gamma(i) for i in range(result.n)}
    reports: list[LemmaReport] = []

    ksa_alpha = check_ksa(alpha, result.k)
    ksa_gammas = {
        i: check_ksa(g, result.k, assume_complete=True)
        for i, g in gammas.items()
    }

    def gather(field_name: str) -> list[str]:
        violations = [
            f"α: {v}" for v in getattr(ksa_alpha, field_name)
        ]
        for i, report in ksa_gammas.items():
            violations.extend(
                f"γ_{i}: {v}" for v in getattr(report, field_name)
            )
        return violations

    for lemma, statement, field_name in (
        ("1", "k-SA-Validity", "validity"),
        ("2", "k-SA-Agreement", "agreement"),
        ("3", "k-SA-Termination", "termination"),
    ):
        violations = gather(field_name)
        reports.append(
            LemmaReport(lemma, statement, not violations, violations)
        )

    channels_alpha = check_channels(alpha)
    channels_gammas = {
        i: check_channels(g, assume_complete=False)
        for i, g in gammas.items()
    }

    def gather_channels(field_name: str) -> list[str]:
        violations = [
            f"α: {v}" for v in getattr(channels_alpha, field_name)
        ]
        for i, report in channels_gammas.items():
            violations.extend(
                f"γ_{i}: {v}" for v in getattr(report, field_name)
            )
        return violations

    for lemma, statement, field_name in (
        ("4", "SR-Validity", "validity"),
        ("5", "SR-No-Duplication", "no_duplication"),
    ):
        violations = gather_channels(field_name)
        reports.append(
            LemmaReport(lemma, statement, not violations, violations)
        )

    wf_violations = [f"α: {v}" for v in alpha.check_well_formed()]
    for i, g in gammas.items():
        wf_violations.extend(
            f"γ_{i}: {v}" for v in g.check_well_formed()
        )
    reports.append(
        LemmaReport(
            "6", "well-formedness (Def. 1)", not wf_violations,
            wf_violations,
        )
    )

    reports.append(
        LemmaReport(
            "7",
            "Algorithm 1 terminates",
            True,
            [f"α has {len(alpha)} steps (finite by construction)"],
        )
    )

    sr_term = channels_alpha.termination
    reports.append(
        LemmaReport("8", "SR-Termination on α", not sr_term, sr_term)
    )

    nsolo_violations = verify_witness(
        result.beta, result.witness, list(range(result.n))
    )
    reports.append(
        LemmaReport(
            "10",
            f"β is {result.n_value}-solo (Def. 5)",
            not nsolo_violations,
            nsolo_violations,
        )
    )
    return reports

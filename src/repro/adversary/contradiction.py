"""Lemma 9's construction and the Theorem 1 contradiction, executed.

Lemma 9 argues: if A solves k-SA in ``CAMP_{k+1}[B]`` with B compositional
and content-neutral, then for ``N = max(1, N_1, …, N_{k+1})`` (the
deliveries each process makes before deciding in its *solo* run), B admits
no N-solo execution — because from any N-solo β one can build

* ``γ`` — the restriction of β to N_i chosen messages per process
  (admissible if B is **compositional**), then
* ``δ`` — γ with those messages renamed into the solo-run messages
  (admissible if B is **content-neutral**),

and δ is indistinguishable, to each process, from its solo run α_i — so
running A' on δ makes every process decide its own value: k+1 > k
distinct decisions, violating k-SA-Agreement.

Lemma 10 (via Algorithm 1) supplies an N-solo β for *any* B implemented
in ``CAMP_{k+1}[k-SA]`` and any N.  :func:`run_theorem_pipeline` chains
the two for a concrete candidate equivalence pair and reports where the
contradiction lands:

* the realized agreement violation (the k+1 decisions on δ), and
* which hypothesis the candidate's *specification* actually fails —
  found by checking the spec on β, γ and δ: a spec that admits β but not
  γ is non-compositional; one that admits γ but not δ is
  content-sensitive; one that admits δ cannot have been equivalent to
  k-SA in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from ..agreement.from_broadcast import (
    BroadcastClient,
    FirstDeliveredClient,
    SoloRun,
    replay_clients,
    run_solo,
)
from ..core.broadcast_spec import BroadcastSpec, SpecVerdict
from ..core.execution import Execution
from ..core.message import MessageId, Renaming
from ..runtime.process import BroadcastProcess
from .scheduler import AdversaryResult, adversarial_scheduler

__all__ = ["TheoremPipelineResult", "run_theorem_pipeline"]

ClientFactory = Callable[[int, int, Hashable], BroadcastClient]


@dataclass
class TheoremPipelineResult:
    """Every artifact of the Lemma 9 + Lemma 10 chain for one candidate."""

    k: int
    n_value: int
    solo_runs: Mapping[int, SoloRun]
    adversary: AdversaryResult
    gamma: Execution
    delta: Execution
    renaming: Renaming
    decisions: Mapping[int, Hashable]
    beta_verdict: SpecVerdict | None
    gamma_verdict: SpecVerdict | None
    delta_verdict: SpecVerdict | None

    @property
    def n(self) -> int:
        return self.k + 1

    @property
    def distinct_decisions(self) -> int:
        return len(set(self.decisions.values()))

    @property
    def agreement_violated(self) -> bool:
        """True when running A' on δ produced more than k distinct values."""
        return self.distinct_decisions > self.k

    @property
    def failing_hypothesis(self) -> str:
        """Which Theorem 1 hypothesis the candidate specification fails.

        Only meaningful when a spec was supplied to the pipeline.
        """
        if self.beta_verdict is None:
            return "no specification supplied"
        if not self.beta_verdict.admitted:
            return (
                "implementation incorrect: the spec rejects the adversarial "
                "execution β outright (B does not implement it in "
                "CAMP[k-SA])"
            )
        if not self.gamma_verdict.admitted:
            return "compositionality (spec rejects the restriction γ)"
        if not self.delta_verdict.admitted:
            return "content-neutrality (spec rejects the renaming δ)"
        return (
            "equivalence (spec admits δ, on which A' violates "
            "k-SA-Agreement)"
        )

    def summary(self) -> str:
        lines = [
            f"Theorem 1 pipeline, k={self.k}, N={self.n_value}:",
            f"  solo runs: N_i = "
            f"{[self.solo_runs[i].n_i for i in sorted(self.solo_runs)]}",
            f"  adversary: {len(self.adversary.execution)} steps, "
            f"β is {self.n_value}-solo",
            f"  γ (restriction): {len(self.gamma)} steps; "
            f"δ (renaming): {len(self.delta)} steps",
            f"  decisions of A' on δ: "
            f"{dict(sorted(self.decisions.items()))} "
            f"→ {self.distinct_decisions} distinct "
            f"({'> k: k-SA-Agreement VIOLATED' if self.agreement_violated else '≤ k'})",
            f"  failing hypothesis: {self.failing_hypothesis}",
        ]
        return "\n".join(lines)


def run_theorem_pipeline(
    k: int,
    algorithm_factory: Callable[[int, int], BroadcastProcess],
    *,
    n_value: int | None = None,
    candidate_spec: BroadcastSpec | None = None,
    client_factory: ClientFactory = FirstDeliveredClient,
    max_steps_per_process: int = 200_000,
) -> TheoremPipelineResult:
    """Execute the full Lemma 9 + Lemma 10 chain for one candidate pair.

    Parameters
    ----------
    k:
        Agreement parameter (k > 1 as in the theorem).
    algorithm_factory:
        The implementation B of the candidate abstraction in
        ``CAMP_{k+1}[k-SA]`` (Lemma 10's hypothesis).
    n_value:
        Override for N; defaults to the Lemma 9 value
        ``max(1, N_0, …, N_k)`` derived from the solo runs.
    candidate_spec:
        The candidate abstraction's specification, used to localize the
        failing hypothesis.  Spec checks run in safety-only mode because
        the adversarial execution is a halted prefix (Section 4.2).
    client_factory:
        The A' algorithm (defaults to decide-first-delivered).
    """
    n = k + 1
    solo_runs = {
        i: run_solo(client_factory, i, n, proposal=i) for i in range(n)
    }
    derived_n = max([1] + [run.n_i for run in solo_runs.values()])
    n_value = derived_n if n_value is None else n_value

    adversary = adversarial_scheduler(
        k, n_value, algorithm_factory,
        max_steps_per_process=max_steps_per_process,
    )
    beta = adversary.beta

    # γ: keep N_i of the witness messages of each process (Lemma 9).
    selected: dict[int, tuple[MessageId, ...]] = {
        i: adversary.witness.chosen[i][: solo_runs[i].n_i]
        for i in range(n)
    }
    kept = [uid for uids in selected.values() for uid in uids]
    gamma = beta.restrict(kept)

    # δ: rename each kept message into the matching solo-run message.
    mapping: dict[MessageId, Hashable] = {}
    for i in range(n):
        for uid, solo_message in zip(selected[i], solo_runs[i].messages):
            mapping[uid] = solo_message.content
    renaming = Renaming(mapping)
    delta = gamma.rename(renaming)

    decisions = replay_clients(
        client_factory, delta, {i: i for i in range(n)}
    )

    beta_verdict = gamma_verdict = delta_verdict = None
    if candidate_spec is not None:
        beta_verdict = candidate_spec.admits(beta, assume_complete=False)
        gamma_verdict = candidate_spec.admits(gamma, assume_complete=False)
        delta_verdict = candidate_spec.admits(delta, assume_complete=False)

    return TheoremPipelineResult(
        k=k,
        n_value=n_value,
        solo_runs=solo_runs,
        adversary=adversary,
        gamma=gamma,
        delta=delta,
        renaming=renaming,
        decisions=decisions,
        beta_verdict=beta_verdict,
        gamma_verdict=gamma_verdict,
        delta_verdict=delta_verdict,
    )

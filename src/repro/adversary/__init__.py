"""Section 4, mechanized: Algorithm 1, Lemmas 1–10, Theorem 1.

* :mod:`repro.adversary.scheduler` — Algorithm 1 and Definition 4's
  executions α, β, γ_i;
* :mod:`repro.adversary.lemmas` — runtime verifiers for Lemmas 1–8 and 10;
* :mod:`repro.adversary.contradiction` — the Lemma 9 construction
  (solo runs → N → restriction γ → renaming δ → k+1 decisions) and the
  Theorem 1 driver.
"""

from .contradiction import TheoremPipelineResult, run_theorem_pipeline
from .lemmas import LemmaReport, check_all_lemmas
from .scheduler import (
    SYNCH,
    AdversaryResult,
    AdversaryStalled,
    adversarial_scheduler,
)

__all__ = [
    "SYNCH",
    "AdversaryResult",
    "AdversaryStalled",
    "LemmaReport",
    "TheoremPipelineResult",
    "adversarial_scheduler",
    "check_all_lemmas",
    "run_theorem_pipeline",
]

"""Algorithm 1 — the adversarial scheduler, line for line.

Given any deterministic algorithm ``B`` implementing a broadcast
abstraction ``B`` in ``CAMP_{k+1}[k-SA]``, the scheduler constructs the
execution ``α_{k,N,B,B}`` of Definition 4:

* processes run **sequentially**, ``p_0`` through ``p_k`` (paper:
  ``p_1 … p_{k+1}``);
* each process repeatedly ``sync-broadcast``\\ s the constant message
  ``SYNCH`` until it has B-delivered N of its own messages;
* point-to-point messages to *other* processes are withheld by the
  scheduler (``sent`` buffer); self-sends are received immediately
  (line 11);
* k-SA proposals are decided adversarially: every process decides its own
  value (line 19), except that the last process is forced to copy
  ``p_k``'s decision when all first k processes proposed on the same
  object (lines 17–18) — the only concession k-SA-Agreement extracts;
* when that forcing becomes unavoidable — ``p_k`` (paper numbering)
  proposes on an object everyone before it used — the scheduler flushes
  ``p_k → p_{k+1}`` messages and resets ``p_k``'s delivery count
  (lines 21–25), excluding pre-flush messages from its counted N;
* finally all withheld messages are released (line 26) and the execution
  halts — only safety matters beyond this point (Section 4.2).

The result object packages α, its broadcast projection β, the Definition 5
witness (the counted messages), the Definition 4 sub-executions γ_i, and
the bookkeeping (reset positions, flush events) that the lemma verifiers
in :mod:`repro.adversary.lemmas` need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from ..core.actions import PointToPointId
from ..core.execution import Execution
from ..core.message import Message, MessageFactory
from ..core.nsolo import NSoloWitness
from ..runtime.process import (
    Blocked,
    BroadcastProcess,
    DeliverSetStep,
    DeliverStep,
    Idle,
    LocalStep,
    ProcessRuntime,
    ProposeStep,
    ReturnStep,
    SendStep,
)
from ..runtime.trace import TraceRecorder

__all__ = ["SYNCH", "AdversaryStalled", "AdversaryResult", "adversarial_scheduler"]

#: The content every sync-broadcast message carries (Algorithm 1, line 7).
SYNCH = "SYNCH"

AlgorithmFactory = Callable[[int, int], BroadcastProcess]


class AdversaryStalled(Exception):
    """The algorithm B has no enabled step in a solo configuration.

    A *correct* implementation of a broadcast abstraction can always make
    progress in the executions γ_i (all other processes may legitimately
    have crashed), by BC-Local-Termination and BC-Global-CS-Termination —
    so stalling here certifies that the candidate B is not a correct
    broadcast implementation in ``CAMP_{k+1}[k-SA]``.
    """


@dataclass
class AdversaryResult:
    """Everything Definition 4 names about one run of Algorithm 1."""

    k: int
    n_value: int
    #: α_{k,N,B,B} — the full CAMP_{k+1}[k-SA] execution.
    execution: Execution
    #: Trace index where line 26 (the final flush) begins.
    line26_mark: int
    #: Trace indices at which line 25 resets happened (after the flush).
    reset_marks: tuple[int, ...]
    #: The counted messages per process — the Definition 5 witness.
    witness: NSoloWitness
    #: The adversary's decided[ksa][process] table.
    decided: Mapping[str, Mapping[int, Hashable]]
    #: Steps each process took (for diagnostics).
    steps_per_process: Mapping[int, int]
    #: Trace index where the post-Algorithm-1 continuation begins, or
    #: ``None`` when the run halted at line 26 as the paper's does.
    continuation_mark: int | None = None

    @property
    def n(self) -> int:
        """System size (k + 1 processes)."""
        return self.k + 1

    @property
    def beta(self) -> Execution:
        """β_{k,N,B,B}: the broadcast-level projection of α (Def. 4)."""
        return self.execution.broadcast_projection()

    def gamma(self, i: int) -> Execution:
        """γ_{k,N,B,B,i} (Definition 4), crash steps included.

        Contains ``p_i``'s steps strictly before line 26, plus the steps
        of ``p_k`` (paper numbering; index ``k-1`` here) that precede the
        last line-25 reset.  All other processes crash initially, and
        ``p_k`` crashes before its first excluded step.
        """
        anchor = self.k - 1  # the paper's p_k
        last_reset = self.reset_marks[-1] if self.reset_marks else 0
        kept: list = []
        anchor_has_excluded_steps = False
        anchor_last_kept_position = -1
        for index, step in enumerate(self.execution):
            if step.process == i and index < self.line26_mark:
                kept.append(step)
            elif step.process == anchor and i != anchor:
                if index < last_reset:
                    kept.append(step)
                    anchor_last_kept_position = len(kept) - 1
                else:
                    anchor_has_excluded_steps = True
        from ..core.actions import CrashAction
        from ..core.steps import Step

        if i != anchor and anchor_has_excluded_steps:
            crash = Step(anchor, CrashAction())
            kept.insert(anchor_last_kept_position + 1, crash)
        others = [
            p for p in range(self.n) if p not in (i, anchor)
        ]
        gamma = Execution.of(kept, self.n)
        return gamma.with_crashes(others)

    def __str__(self) -> str:
        return (
            f"adversarial execution: k={self.k}, N={self.n_value}, "
            f"{len(self.execution)} steps, "
            f"{len(self.reset_marks)} reset(s), witness of "
            f"{self.n_value} message(s) per process"
        )


def adversarial_scheduler(
    k: int,
    n_value: int,
    algorithm_factory: AlgorithmFactory,
    *,
    max_steps_per_process: int = 200_000,
    continue_after_flush: bool = False,
) -> AdversaryResult:
    """Run Algorithm 1 against an implementation ``B`` of a broadcast.

    Parameters
    ----------
    k:
        The agreement parameter; the system has ``k + 1`` processes and
        the oracle objects are k-SA (requires ``k > 1``, as in the paper).
    n_value:
        The paper's N — own deliveries each process must count.
    algorithm_factory:
        ``factory(pid, n)`` building each process's instance of B.
    max_steps_per_process:
        Safety budget against non-terminating candidates (Lemma 7
        guarantees termination for correct ones).
    continue_after_flush:
        Algorithm 1 halts right after releasing the withheld messages
        (line 26); their ``upon receive`` processing never runs, because
        only safety matters for the proof (Section 4.2).  With this flag
        the scheduler additionally lets every process run to quiescence
        afterwards — a legal fair extension of the schedule in which the
        deferred deliveries happen, materializing the ordering violations
        the paper's grey boxes allude to (used by the corollary
        experiment C1).  k-SA proposals made during the continuation are
        decided benignly within the agreement envelope.

    Raises
    ------
    AdversaryStalled
        If B blocks in a solo configuration (B is then not a correct
        broadcast implementation — see Lemma 7's argument).
    """
    if k <= 1:
        raise ValueError(f"the construction requires k > 1, got k={k}")
    if n_value <= 0:
        raise ValueError(f"N must be positive, got {n_value}")

    n = k + 1
    anchor = k - 1  # the paper's p_k
    last = k  # the paper's p_{k+1}
    factory = MessageFactory()
    runtimes = {
        p: ProcessRuntime(algorithm_factory(p, n), message_factory=factory)
        for p in range(n)
    }
    trace = TraceRecorder(n)
    sent: list[tuple[PointToPointId, Hashable]] = []
    decided: dict[str, dict[int, Hashable]] = {}
    reset_marks: list[int] = []
    counted: dict[int, list[Message]] = {p: [] for p in range(n)}
    steps_per_process: dict[int, int] = {p: 0 for p in range(n)}

    for i in range(n):
        runtime = runtimes[i]
        local_del = 0
        current: Message | None = None
        budget = max_steps_per_process
        while local_del < n_value:
            budget -= 1
            if budget < 0:
                raise AdversaryStalled(
                    f"p{i} exceeded {max_steps_per_process} steps without "
                    f"counting {n_value} own deliveries — B does not "
                    f"terminate under the adversarial schedule"
                )
            steps_per_process[i] += 1
            sync_done = (
                current is not None
                and current.uid in runtime.returned_uids
                and runtime.has_delivered(current.uid)
            )
            if current is None or sync_done:
                # Lines 6-7: start a new B.sync-broadcast(SYNCH).
                if current is not None:
                    trace.local(i, "return B.sync-broadcast(SYNCH)")
                current = runtime.start_broadcast(SYNCH)
                trace.broadcast_invoke(i, current)
                continue
            # Line 8: p_i's next local step in C(α), according to B.
            outcome = runtime.next_step()
            if isinstance(outcome, (Blocked, Idle)):
                raise AdversaryStalled(
                    f"p{i} is stalled ({outcome!r}) inside "
                    f"B.sync-broadcast — B violates its termination "
                    f"properties in the solo execution γ_{i}"
                )
            if isinstance(outcome, SendStep):
                trace.send(i, outcome.p2p, outcome.payload)
                if outcome.p2p.receiver == i:
                    # Lines 10-11: self-sends are received immediately.
                    trace.receive(i, outcome.p2p, outcome.payload)
                    runtime.inject_receive(outcome.p2p, outcome.payload)
                else:
                    # Lines 12-13: withhold the message.
                    sent.append((outcome.p2p, outcome.payload))
            elif isinstance(outcome, DeliverStep):
                # Lines 14-15.
                trace.deliver(i, outcome.message)
                if outcome.message.sender == i:
                    if local_del >= 0:
                        counted[i].append(outcome.message)
                    local_del += 1
            elif isinstance(outcome, DeliverSetStep):
                # Lines 14-15, generalized to set-constrained delivery
                # (the paper's Remark on Expressiveness): each own message
                # in the delivered set counts.
                trace.deliver_set(i, outcome.messages)
                for message in outcome.messages:
                    if message.sender == i:
                        if local_del >= 0:
                            counted[i].append(message)
                        local_del += 1
            elif isinstance(outcome, ProposeStep):
                # Lines 16-20.
                ksa = outcome.ksa
                per_object = decided.setdefault(ksa, {})
                if i in per_object:
                    raise AdversaryStalled(
                        f"p{i} proposes twice on {ksa} — B violates the "
                        f"one-shot usage of k-SA objects"
                    )
                first_k_decided = all(
                    j in per_object for j in range(k)
                )
                if i == last and first_k_decided:
                    per_object[i] = per_object[anchor]  # line 18
                else:
                    per_object[i] = outcome.value  # line 19
                trace.propose(i, ksa, outcome.value)
                trace.decide(i, ksa, per_object[i])
                runtime.resume_decide(per_object[i])
                # Lines 21-25: the unavoidable-communication escape hatch.
                if i == anchor and all(
                    j in per_object for j in range(k)
                ):
                    remaining: list[tuple[PointToPointId, Hashable]] = []
                    for p2p, payload in sent:
                        if p2p.sender == anchor and p2p.receiver == last:
                            trace.receive(last, p2p, payload)
                            runtimes[last].inject_receive(p2p, payload)
                        else:
                            remaining.append((p2p, payload))
                    sent[:] = remaining
                    local_del = -1
                    counted[i].clear()
                    reset_marks.append(trace.mark())
            elif isinstance(outcome, ReturnStep):
                trace.broadcast_return(i, outcome.message)
            elif isinstance(outcome, LocalStep):
                trace.local(i, outcome.label)
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unexpected outcome {outcome!r}")

    # Line 26: release every withheld message.
    line26_mark = trace.mark()
    for p2p, payload in sent:
        trace.receive(p2p.receiver, p2p, payload)
        runtimes[p2p.receiver].inject_receive(p2p, payload)
    sent.clear()

    continuation_mark: int | None = None
    if continue_after_flush:
        continuation_mark = trace.mark()
        _run_continuation(
            k, runtimes, trace, decided, max_steps_per_process
        )

    witness = NSoloWitness(
        n_value,
        {p: tuple(m.uid for m in counted[p]) for p in range(n)},
    )
    return AdversaryResult(
        k=k,
        n_value=n_value,
        execution=trace.execution(),
        line26_mark=line26_mark,
        reset_marks=tuple(reset_marks),
        witness=witness,
        decided={ksa: dict(v) for ksa, v in decided.items()},
        steps_per_process=steps_per_process,
        continuation_mark=continuation_mark,
    )


def _run_continuation(
    k: int,
    runtimes: Mapping[int, ProcessRuntime],
    trace: TraceRecorder,
    decided: dict[str, dict[int, Hashable]],
    budget: int,
) -> None:
    """Fairly run every process to quiescence after the line-26 flush.

    Round-robin over the processes; sends are received immediately (a
    synchronous tail keeps the extension finite); proposals are decided
    benignly: own value while fewer than k distinct values are decided on
    the object, else adopt the most recent decided value.
    """
    n = k + 1
    progress = True
    while progress and budget > 0:
        progress = False
        for i in range(n):
            runtime = runtimes[i]
            while runtime.has_enabled_step() and budget > 0:
                budget -= 1
                progress = True
                outcome = runtime.next_step()
                if isinstance(outcome, SendStep):
                    trace.send(i, outcome.p2p, outcome.payload)
                    trace.receive(
                        outcome.p2p.receiver, outcome.p2p, outcome.payload
                    )
                    runtimes[outcome.p2p.receiver].inject_receive(
                        outcome.p2p, outcome.payload
                    )
                elif isinstance(outcome, DeliverStep):
                    trace.deliver(i, outcome.message)
                elif isinstance(outcome, DeliverSetStep):
                    trace.deliver_set(i, outcome.messages)
                elif isinstance(outcome, ProposeStep):
                    per_object = decided.setdefault(outcome.ksa, {})
                    distinct = list(dict.fromkeys(per_object.values()))
                    if (
                        outcome.value in distinct
                        or len(distinct) < k
                    ):
                        choice = outcome.value
                    else:
                        choice = distinct[-1]
                    per_object[i] = choice
                    trace.propose(i, outcome.ksa, outcome.value)
                    trace.decide(i, outcome.ksa, choice)
                    runtime.resume_decide(choice)
                elif isinstance(outcome, ReturnStep):
                    trace.broadcast_return(i, outcome.message)
                elif isinstance(outcome, LocalStep):
                    trace.local(i, outcome.label)
                else:
                    break

"""Delivery-latency analytics: how long messages wait, in scheduler steps.

Latency here is *logical*: the number of scheduler steps between a
message's ``B.broadcast`` invocation and each of its deliveries.  It is
the natural progress metric for comparing algorithms (Send-To-All
delivers in one network hop; forward-then-deliver in two; the round-based
agreement algorithms whenever their round closes) and scheduling policies
(a targeted delay shows up directly in the victim's tail latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.execution import Execution
from ..core.message import MessageId

__all__ = ["LatencyStats", "delivery_latencies", "latency_stats"]


def delivery_latencies(
    execution: Execution,
) -> Mapping[tuple[MessageId, int], int]:
    """``(message, deliverer) -> steps`` from invocation to delivery."""
    invoked_at: dict[MessageId, int] = {}
    latencies: dict[tuple[MessageId, int], int] = {}
    for index, step in enumerate(execution):
        if step.is_invoke():
            invoked_at[step.action.message.uid] = index
        elif step.is_deliver():
            uid = step.action.message.uid
            if uid in invoked_at:
                latencies[(uid, step.process)] = index - invoked_at[uid]
        elif step.is_deliver_set():
            for message in step.action.messages:
                if message.uid in invoked_at:
                    latencies[(message.uid, step.process)] = (
                        index - invoked_at[message.uid]
                    )
    return latencies


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency distribution (in scheduler steps)."""

    count: int
    minimum: int
    median: float
    p90: float
    maximum: int
    mean: float

    def __str__(self) -> str:
        return (
            f"{self.count} deliveries: min {self.minimum}, median "
            f"{self.median:.0f}, p90 {self.p90:.0f}, max {self.maximum}"
        )


def latency_stats(execution: Execution) -> LatencyStats | None:
    """Distribution summary over all (message, deliverer) latencies."""
    values = sorted(delivery_latencies(execution).values())
    if not values:
        return None

    def percentile(q: float) -> float:
        if len(values) == 1:
            return float(values[0])
        position = q * (len(values) - 1)
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        return values[low] * (1 - fraction) + values[high] * fraction

    return LatencyStats(
        count=len(values),
        minimum=values[0],
        median=percentile(0.5),
        p90=percentile(0.9),
        maximum=values[-1],
        mean=sum(values) / len(values),
    )

"""Causality analytics: vector clocks and the happened-before relation.

These utilities support the causal-broadcast machinery and the tests: a
standalone :class:`VectorClock` value type, and
:func:`happened_before_graph`, which builds Lamport's happened-before
relation over the *steps* of an execution (program order, send→receive,
broadcast→deliver), the "relativistic notion of time" of the paper's
conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from ..core.actions import (
    BroadcastInvoke,
    DeliverAction,
    ReceiveAction,
    SendAction,
)
from ..core.execution import Execution

__all__ = ["VectorClock", "happened_before_graph", "concurrent_steps"]


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock over ``n`` processes."""

    entries: tuple[int, ...]

    @staticmethod
    def zero(n: int) -> "VectorClock":
        return VectorClock((0,) * n)

    def tick(self, process: int) -> "VectorClock":
        """Advance one process's component by one."""
        entries = list(self.entries)
        entries[process] += 1
        return VectorClock(tuple(entries))

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum."""
        if len(self.entries) != len(other.entries):
            raise ValueError("vector clocks of different dimensions")
        return VectorClock(
            tuple(max(a, b) for a, b in zip(self.entries, other.entries))
        )

    def __le__(self, other: "VectorClock") -> bool:
        return all(a <= b for a, b in zip(self.entries, other.entries))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self.entries != other.entries

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not (self <= other) and not (other <= self)

    def __getitem__(self, process: int) -> int:
        return self.entries[process]

    def __str__(self) -> str:
        return "⟨" + ",".join(map(str, self.entries)) + "⟩"


def happened_before_graph(execution: Execution) -> nx.DiGraph:
    """Lamport's happened-before over step indices of the execution.

    Edges: consecutive steps of the same process (program order), each
    ``send`` to its matching ``receive``, and each ``broadcast`` to every
    delivery of its message.  Nodes are step indices.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(execution)))
    last_of_process: dict[int, int] = {}
    send_index: dict[object, int] = {}
    invoke_index: dict[object, int] = {}
    for index, step in enumerate(execution):
        previous = last_of_process.get(step.process)
        if previous is not None:
            graph.add_edge(previous, index)
        last_of_process[step.process] = index
        action = step.action
        if isinstance(action, SendAction):
            send_index[action.p2p] = index
        elif isinstance(action, ReceiveAction):
            if action.p2p in send_index:
                graph.add_edge(send_index[action.p2p], index)
        elif isinstance(action, BroadcastInvoke):
            invoke_index[action.message.uid] = index
        elif isinstance(action, DeliverAction):
            if action.message.uid in invoke_index:
                graph.add_edge(invoke_index[action.message.uid], index)
    return graph


def concurrent_steps(execution: Execution) -> Iterator[tuple[int, int]]:
    """Pairs of step indices unordered by happened-before."""
    graph = happened_before_graph(execution)
    closure = nx.transitive_closure_dag(graph)
    total = len(execution)
    for a in range(total):
        reachable = set(closure.successors(a))
        ancestors = set(closure.predecessors(a))
        for b in range(a + 1, total):
            if b not in reachable and b not in ancestors:
                yield (a, b)

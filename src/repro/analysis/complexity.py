"""Cost analytics: message, step and oracle complexity of executions.

The paper proves an impossibility, not a complexity bound — but the
algorithms implemented here have classical costs worth tracking (e.g.
forward-then-deliver is Θ(n²) messages per broadcast, the round-based
agreement algorithms add one oracle invocation per process per round).
:func:`cost_profile` extracts the counts from a recorded execution, and
the P4 experiment/bench tabulates them per algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.actions import (
    DeliverAction,
    DeliverSetAction,
    ProposeAction,
    ReceiveAction,
    SendAction,
)
from ..core.execution import Execution

__all__ = ["CostProfile", "cost_profile"]


@dataclass(frozen=True)
class CostProfile:
    """Aggregate event counts of one execution."""

    broadcasts: int
    deliveries: int
    sends: int
    receives: int
    proposals: int
    steps: int

    @property
    def sends_per_broadcast(self) -> float:
        """Point-to-point messages per broadcast invocation."""
        if self.broadcasts == 0:
            return 0.0
        return self.sends / self.broadcasts

    @property
    def proposals_per_broadcast(self) -> float:
        """Oracle invocations per broadcast invocation."""
        if self.broadcasts == 0:
            return 0.0
        return self.proposals / self.broadcasts

    @property
    def delivery_ratio(self) -> float:
        """Deliveries per broadcast (n for full dissemination)."""
        if self.broadcasts == 0:
            return 0.0
        return self.deliveries / self.broadcasts

    def __str__(self) -> str:
        return (
            f"{self.broadcasts} broadcasts, {self.sends} sends "
            f"({self.sends_per_broadcast:.1f}/bcast), "
            f"{self.proposals} proposals "
            f"({self.proposals_per_broadcast:.2f}/bcast), "
            f"{self.deliveries} deliveries"
        )


def cost_profile(execution: Execution) -> CostProfile:
    """Count the cost-relevant events of one execution."""
    broadcasts = deliveries = sends = receives = proposals = 0
    for step in execution:
        action = step.action
        if step.is_invoke():
            broadcasts += 1
        elif isinstance(action, DeliverAction):
            deliveries += 1
        elif isinstance(action, DeliverSetAction):
            deliveries += len(action.messages)
        elif isinstance(action, SendAction):
            sends += 1
        elif isinstance(action, ReceiveAction):
            receives += 1
        elif isinstance(action, ProposeAction):
            proposals += 1
    return CostProfile(
        broadcasts=broadcasts,
        deliveries=deliveries,
        sends=sends,
        receives=receives,
        proposals=proposals,
        steps=len(execution),
    )

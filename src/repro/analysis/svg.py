"""A graphical Figure 1: the adversarial execution as an SVG diagram.

Complements the ASCII lanes of :mod:`repro.analysis.report` with a
self-contained SVG in the visual conventions of the paper's Figure 1:

* one horizontal timeline per process (paper numbering ``p1 … p_{k+1}``);
* plain grey arrows for point-to-point messages (send → receive) — the
  long late arrows are the withheld messages released at line 26;
* dotted arrows for the broadcast-level events (B.broadcast → B.deliver);
* white squares for k-SA propositions, with the decided value printed
  above (the forced copy at ``p_{k+1}`` is visible as a value that does
  not match the proposer's own);
* deliveries as diamonds, with the counted ones — the paper's grey
  boxes — wrapped in grey rectangles.

No external dependency: the SVG is assembled textually and validated as
XML in the tests.  Write it to a file and open it in any browser::

    from repro.analysis.svg import render_figure1_svg
    svg = render_figure1_svg(result)
    open("figure1.svg", "w").write(svg)
"""

from __future__ import annotations

import html
from dataclasses import dataclass

from ..adversary.scheduler import AdversaryResult
from ..core.actions import (
    BroadcastInvoke,
    DecideAction,
    DeliverAction,
    DeliverSetAction,
    ProposeAction,
    ReceiveAction,
    SendAction,
)

__all__ = ["render_figure1_svg"]

_STEP_WIDTH = 11
_LANE_HEIGHT = 64
_MARGIN_LEFT = 56
_MARGIN_TOP = 70


@dataclass
class _Layout:
    n: int
    steps: int

    def x(self, index: int) -> float:
        return _MARGIN_LEFT + index * _STEP_WIDTH

    def y(self, process: int) -> float:
        return _MARGIN_TOP + process * _LANE_HEIGHT

    @property
    def width(self) -> float:
        return self.x(self.steps) + 40

    @property
    def height(self) -> float:
        return self.y(self.n - 1) + 60


def _escape(value: object, limit: int = 16) -> str:
    text = str(value)
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return html.escape(text)


def render_figure1_svg(result: AdversaryResult) -> str:
    """Render one adversarial execution as a standalone SVG document."""
    execution = result.execution
    layout = _Layout(n=result.n, steps=len(execution))
    witness_uids = {
        uid for uids in result.witness.chosen.values() for uid in uids
    }

    body: list[str] = []

    # lanes and labels
    for process in range(result.n):
        y = layout.y(process)
        body.append(
            f'<line x1="{_MARGIN_LEFT - 16}" y1="{y}" '
            f'x2="{layout.width - 20}" y2="{y}" class="lane"/>'
        )
        body.append(
            f'<text x="{_MARGIN_LEFT - 24}" y="{y + 4}" '
            f'class="plabel">p{process + 1}</text>'
        )

    send_positions: dict[object, int] = {}
    propose_positions: dict[tuple[int, str], int] = {}

    # pass 1: collect arrow endpoints
    for index, step in enumerate(execution):
        if isinstance(step.action, SendAction):
            send_positions[step.action.p2p] = index

    invoke_positions: dict[object, int] = {}
    for index, step in enumerate(execution):
        if isinstance(step.action, BroadcastInvoke):
            invoke_positions[step.action.message.uid] = index

    def _deliveries_of(action):
        if isinstance(action, DeliverAction):
            return (action.message,)
        if isinstance(action, DeliverSetAction):
            return action.messages
        return ()

    # pass 2: arrows first (under the glyphs)
    for index, step in enumerate(execution):
        action = step.action
        if isinstance(action, ReceiveAction):
            origin = send_positions.get(action.p2p)
            if origin is None:
                continue
            x1, y1 = layout.x(origin), layout.y(action.p2p.sender)
            x2, y2 = layout.x(index), layout.y(step.process)
            cls = "selfmsg" if action.p2p.sender == step.process else "msg"
            body.append(
                f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
                f'class="{cls}" marker-end="url(#arrow)"/>'
            )
        else:
            for message in _deliveries_of(action):
                origin = invoke_positions.get(message.uid)
                if origin is not None and origin != index:
                    x1 = layout.x(origin)
                    y1 = layout.y(message.sender)
                    x2, y2 = layout.x(index), layout.y(step.process)
                    body.append(
                        f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
                        f'class="bcast" marker-end="url(#arrow)"/>'
                    )

    # pass 3: glyphs
    for index, step in enumerate(execution):
        action = step.action
        x, y = layout.x(index), layout.y(step.process)
        if isinstance(action, BroadcastInvoke):
            body.append(
                f'<circle cx="{x}" cy="{y}" r="4" class="invoke">'
                f"<title>{_escape(action, 60)}</title></circle>"
            )
        elif isinstance(action, (DeliverAction, DeliverSetAction)):
            delivered = _deliveries_of(action)
            if any(m.uid in witness_uids for m in delivered):
                body.append(
                    f'<rect x="{x - 8}" y="{y - 8}" width="16" '
                    f'height="16" class="greybox"/>'
                )
            body.append(
                f'<path d="M {x} {y - 5} L {x + 5} {y} L {x} {y + 5} '
                f'L {x - 5} {y} Z" class="deliver">'
                f"<title>{_escape(action, 60)}</title></path>"
            )
        elif isinstance(action, ProposeAction):
            propose_positions[(step.process, action.ksa)] = index
            body.append(
                f'<rect x="{x - 5}" y="{y - 5}" width="10" height="10" '
                f'class="propose"><title>{_escape(action, 60)}</title>'
                f"</rect>"
            )
        elif isinstance(action, DecideAction):
            origin = propose_positions.get((step.process, action.ksa))
            anchor = layout.x(origin) if origin is not None else x
            body.append(
                f'<text x="{anchor}" y="{y - 12}" class="decision">'
                f"{_escape(action.value, 12)}</text>"
            )

    title = (
        f"Figure 1 — adversarial execution α(k={result.k}, "
        f"N={result.n_value}), {len(execution)} steps, "
        f"{len(result.reset_marks)} reset(s)"
    )
    legend = (
        "● B.broadcast   ◆ B.deliver   grey box = counted (Def. 5 "
        "witness)   □ propose (decided value above)   solid = "
        "send/receive   dotted = broadcast-level"
    )
    return f"""<svg xmlns="http://www.w3.org/2000/svg" width="{layout.width:.0f}" height="{layout.height:.0f}" viewBox="0 0 {layout.width:.0f} {layout.height:.0f}">
<defs>
<marker id="arrow" viewBox="0 0 8 8" refX="7" refY="4" markerWidth="5" markerHeight="5" orient="auto">
<path d="M 0 0 L 8 4 L 0 8 z" fill="#888"/>
</marker>
<style>
.lane {{ stroke: #222; stroke-width: 1.1; }}
.plabel {{ font: bold 13px sans-serif; text-anchor: end; }}
.msg {{ stroke: #999; stroke-width: 0.8; }}
.selfmsg {{ stroke: #ccc; stroke-width: 0.6; }}
.bcast {{ stroke: #3465a4; stroke-width: 0.9; stroke-dasharray: 3 3; }}
.invoke {{ fill: #111; }}
.deliver {{ fill: #3465a4; }}
.greybox {{ fill: #bbb; opacity: 0.65; }}
.propose {{ fill: #fff; stroke: #111; stroke-width: 1.1; }}
.decision {{ font: 9px monospace; text-anchor: middle; fill: #444; }}
.title {{ font: bold 14px sans-serif; }}
.legend {{ font: 11px sans-serif; fill: #333; }}
</style>
</defs>
<text x="{_MARGIN_LEFT - 16}" y="24" class="title">{html.escape(title)}</text>
<text x="{_MARGIN_LEFT - 16}" y="42" class="legend">{html.escape(legend)}</text>
{chr(10).join(body)}
</svg>
"""

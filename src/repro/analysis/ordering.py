"""Delivery-order analytics over broadcast-level executions.

Extends :mod:`repro.core.order` with aggregate statistics used by the
benchmark harness — how much delivery-order agreement an algorithm
achieves, where first deliveries land, and how large the largest
"disagreement clique" is (the quantity k-BO Broadcast bounds by k).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import networkx as nx

from ..core.execution import Execution
from ..core.order import (
    delivery_positions,
    disagreement_graph,
    first_delivered_set,
    pair_orders,
)

__all__ = ["OrderingStats", "ordering_stats", "max_disagreement_clique"]


@dataclass(frozen=True)
class OrderingStats:
    """Aggregate ordering quality of one execution."""

    messages: int
    comparable_pairs: int
    agreeing_pairs: int
    disagreeing_pairs: int
    first_delivered_count: int
    max_disagreement_clique: int

    @property
    def agreement_ratio(self) -> float:
        """Fraction of comparable pairs delivered in one uniform order."""
        if self.comparable_pairs == 0:
            return 1.0
        return self.agreeing_pairs / self.comparable_pairs

    def satisfies_kbo(self, k: int) -> bool:
        """True iff the execution satisfies k-BO ordering."""
        return self.max_disagreement_clique <= k

    def __str__(self) -> str:
        return (
            f"{self.messages} messages, "
            f"{self.agreeing_pairs}/{self.comparable_pairs} pairs uniformly "
            f"ordered (ratio {self.agreement_ratio:.3f}), "
            f"{self.first_delivered_count} first-delivered, "
            f"max disagreement clique {self.max_disagreement_clique}"
        )


def max_disagreement_clique(execution: Execution) -> int:
    """Size of the largest set of pairwise non-uniformly-ordered messages.

    An execution satisfies k-BO ordering iff this is at most k (and Total
    Order iff it is at most 1).
    """
    graph = disagreement_graph(execution)
    if graph.number_of_edges() == 0:
        return 1 if graph.number_of_nodes() else 0
    _, size = nx.max_weight_clique(graph, weight=None)
    return size


def ordering_stats(execution: Execution) -> OrderingStats:
    """Compute the aggregate delivery-order statistics of one execution."""
    positions = delivery_positions(execution)
    uids = [m.uid for m in execution.broadcast_messages]
    comparable = agreeing = disagreeing = 0
    for first, second in combinations(uids, 2):
        orders = pair_orders(positions, first, second)
        if orders:
            comparable += 1
            if len(orders) == 1:
                agreeing += 1
            else:
                disagreeing += 1
    return OrderingStats(
        messages=len(uids),
        comparable_pairs=comparable,
        agreeing_pairs=agreeing,
        disagreeing_pairs=disagreeing,
        first_delivered_count=len(first_delivered_set(execution)),
        max_disagreement_clique=max_disagreement_clique(execution),
    )

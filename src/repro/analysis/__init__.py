"""Trace analytics and rendering.

* :mod:`repro.analysis.ordering` — delivery-order agreement statistics and
  the disagreement-clique size that k-BO Broadcast bounds;
* :mod:`repro.analysis.causality` — vector clocks and happened-before;
* :mod:`repro.analysis.report` — the Figure 1 renderer and ASCII tables.
"""

from .causality import VectorClock, concurrent_steps, happened_before_graph
from .complexity import CostProfile, cost_profile
from .dot import happened_before_dot
from .latency import LatencyStats, delivery_latencies, latency_stats
from .ordering import OrderingStats, max_disagreement_clique, ordering_stats
from .report import ascii_table, render_figure1, render_lanes
from .svg import render_figure1_svg

__all__ = [
    "CostProfile",
    "LatencyStats",
    "OrderingStats",
    "VectorClock",
    "ascii_table",
    "concurrent_steps",
    "cost_profile",
    "delivery_latencies",
    "happened_before_dot",
    "happened_before_graph",
    "latency_stats",
    "max_disagreement_clique",
    "ordering_stats",
    "render_figure1",
    "render_figure1_svg",
    "render_lanes",
]

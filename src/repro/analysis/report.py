"""Rendering: the Figure 1 diagram and plain-text result tables.

:func:`render_figure1` regenerates the paper's only figure — the
adversarial execution ``α_{k,N,B,B}`` — as a per-process lane diagram in
the paper's conventions: processes are printed ``p1 … p_{k+1}`` (1-based),
plain tokens are send/receive steps, ``□…→…`` are k-SA propositions with
their decided values, ``B(…)``/``dv(…)`` are B-broadcasts and
B-deliveries, and the final N counted messages of each process — the
paper's grey boxes, "incompatible with an implementation of k-set
agreement" — are bracketed ``⟦…⟧``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..adversary.scheduler import AdversaryResult
from ..core.actions import (
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DecideAction,
    DeliverAction,
    DeliverSetAction,
    LocalAction,
    ProposeAction,
    ReceiveAction,
    SendAction,
)
from ..core.execution import Execution

__all__ = ["render_figure1", "render_lanes", "ascii_table"]


def _short_value(value: object, limit: int = 18) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _token(step, witness_uids: frozenset) -> str:
    action = step.action
    if isinstance(action, BroadcastInvoke):
        return f"B({action.message.uid})"
    if isinstance(action, BroadcastReturn):
        return "ret"
    if isinstance(action, DeliverAction):
        body = f"dv({action.message.uid})"
        if action.message.uid in witness_uids:
            return f"⟦{body}⟧"
        return body
    if isinstance(action, DeliverSetAction):
        parts = []
        for message in action.messages:
            part = str(message.uid)
            if message.uid in witness_uids:
                part = f"⟦{part}⟧"
            parts.append(part)
        return f"dv{{{','.join(parts)}}}"
    if isinstance(action, SendAction):
        return f"s→p{action.p2p.receiver + 1}"
    if isinstance(action, ReceiveAction):
        return f"r←p{action.p2p.sender + 1}"
    if isinstance(action, ProposeAction):
        return f"□{_short_value(action.ksa)}?{_short_value(action.value, 10)}"
    if isinstance(action, DecideAction):
        return f"→{_short_value(action.value, 10)}"
    if isinstance(action, CrashAction):
        return "✝"
    if isinstance(action, LocalAction):
        if "sync" in action.label:
            return "■"
        return f"·{action.label}" if action.label else "·"
    return "?"


def render_lanes(
    execution: Execution,
    *,
    witness_uids: Iterable = (),
    width: int = 100,
) -> str:
    """Per-process lane rendering of any execution."""
    witness = frozenset(witness_uids)
    lanes: dict[int, list[str]] = {}
    for step in execution:
        lanes.setdefault(step.process, []).append(_token(step, witness))
    lines: list[str] = []
    for process in sorted(lanes):
        tokens = lanes[process]
        prefix = f"p{process + 1}: "
        indent = " " * len(prefix)
        line = prefix
        for token in tokens:
            if len(line) + len(token) + 1 > width:
                lines.append(line)
                line = indent
            line += token + " "
        lines.append(line.rstrip())
        lines.append("")
    return "\n".join(lines).rstrip()


def render_figure1(result: AdversaryResult, *, width: int = 100) -> str:
    """Regenerate Figure 1 for one adversarial execution.

    Conventions of the paper's caption: square tokens are propositions on
    k-SA objects with decided values, ``B``/``dv`` the broadcast-level
    events, and the grey boxes (here ``⟦…⟧``) the final N messages of each
    process.
    """
    witness_uids = {
        uid for uids in result.witness.chosen.values() for uid in uids
    }
    header = [
        f"Figure 1 — adversarial execution α(k={result.k}, "
        f"N={result.n_value}) over {result.n} processes "
        f"(paper numbering p1…p{result.n})",
        f"  {len(result.execution)} steps, "
        f"{len(result.reset_marks)} local_del reset(s) "
        f"(lines 21-25), withheld messages released at step "
        f"{result.line26_mark} (line 26)",
        "  legend: B(m)=B.broadcast  dv(m)=B.deliver  ⟦dv(m)⟧=counted "
        "(grey box)  □obj?v=propose  →w=decide",
        "          s→p/r←p=send/receive  ■=sync-broadcast return  "
        "✝=crash",
        "",
    ]
    return "\n".join(header) + render_lanes(
        result.execution, witness_uids=witness_uids, width=width
    )


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A minimal fixed-width table renderer for experiment output."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)

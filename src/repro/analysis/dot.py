"""Graphviz DOT export of the happened-before relation.

Renders Lamport's happened-before over an execution's steps as a DOT
digraph: one cluster (column) per process in program order, solid edges
for message transport (send → receive), dashed edges for broadcast-level
causality (B.broadcast → B.deliver).  Feed the output to ``dot -Tsvg``
or any Graphviz viewer::

    from repro.analysis.dot import happened_before_dot
    open("hb.dot", "w").write(happened_before_dot(execution))
"""

from __future__ import annotations

from ..core.actions import (
    BroadcastInvoke,
    DeliverAction,
    ReceiveAction,
    SendAction,
)
from ..core.execution import Execution

__all__ = ["happened_before_dot"]


def _label(step) -> str:
    text = str(step.action)
    if len(text) > 28:
        text = text[:27] + "…"
    return text.replace('"', "'")


def happened_before_dot(execution: Execution) -> str:
    """The execution's happened-before relation as a DOT digraph."""
    lines = [
        "digraph happened_before {",
        "  rankdir=TB;",
        '  node [shape=box, fontsize=9, fontname="monospace"];',
    ]
    per_process: dict[int, list[int]] = {}
    for index, step in enumerate(execution):
        per_process.setdefault(step.process, []).append(index)

    for process in sorted(per_process):
        lines.append(f"  subgraph cluster_p{process} {{")
        lines.append(f'    label="p{process + 1}";')
        for index in per_process[process]:
            lines.append(
                f'    s{index} [label="{_label(execution[index])}"];'
            )
        chain = per_process[process]
        for earlier, later in zip(chain, chain[1:]):
            lines.append(f"    s{earlier} -> s{later} [style=bold];")
        lines.append("  }")

    send_index: dict[object, int] = {}
    invoke_index: dict[object, int] = {}
    for index, step in enumerate(execution):
        action = step.action
        if isinstance(action, SendAction):
            send_index[action.p2p] = index
        elif isinstance(action, ReceiveAction):
            origin = send_index.get(action.p2p)
            if origin is not None:
                lines.append(f"  s{origin} -> s{index};")
        elif isinstance(action, BroadcastInvoke):
            invoke_index[action.message.uid] = index
        elif isinstance(action, DeliverAction):
            origin = invoke_index.get(action.message.uid)
            if origin is not None and origin != index:
                lines.append(
                    f"  s{origin} -> s{index} [style=dashed, "
                    f"color=steelblue];"
                )
    lines.append("}")
    return "\n".join(lines)

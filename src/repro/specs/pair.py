"""Pair Broadcast — capturing test-and-set / 2-process consensus.

The paper's Introduction (§1.2) cites Pair Broadcast [Déprés,
Mostéfaoui, Perrin & Raynal, DISC 2023] as the abstraction that
characterizes the computational power of test-and-set and of consensus
between two processes.  Its ordering property strengthens Mutual
Broadcast's per-pair mutuality into per-pair *agreement*:

    for any two messages m broadcast by p and m' broadcast by q (p ≠ q),
    p and q deliver m and m' in the same relative order.

Equivalently, restricted to the two *senders* of any message pair, the
pair is uniformly ordered — between two processes this is Total-Order
Broadcast (hence 2-process consensus), while across n processes it stays
strictly weaker than Total Order (third parties may observe any order).

The predicate is a conjunction of per-pair clauses over sender-local
delivery orders, so Pair Broadcast is compositional, and it never reads
contents, so it is content-neutral.  Like Mutual Broadcast it rejects
1-solo executions — so it, too, has no implementation from k-SA objects
(experiment M1).
"""

from __future__ import annotations

from itertools import combinations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import delivery_positions

__all__ = ["PairBroadcastSpec"]


class PairBroadcastSpec(BroadcastSpec):
    """Pair Broadcast: the two senders agree on their pair's order."""

    name = "Pair Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        positions = delivery_positions(execution)
        for first, second in combinations(execution.broadcast_messages, 2):
            p, q = first.sender, second.sender
            if p == q:
                continue
            orders = set()
            for ranks in (positions.get(p, {}), positions.get(q, {})):
                if first.uid in ranks and second.uid in ranks:
                    orders.add(
                        1 if ranks[first.uid] < ranks[second.uid] else -1
                    )
            if len(orders) > 1:
                violations.append(
                    f"senders p{p} and p{q} deliver their pair "
                    f"{first.uid}/{second.uid} in opposite orders"
                )
        return violations

"""k-Stepped Broadcast — the paper's non-compositional counterexample.

Section 3.2 introduces this abstraction to motivate compositionality.
Ordering predicate: *for each round index a, let S_a be the set containing
the a-th message broadcast by each process; then at most k messages
m ∈ S_a are delivered by some process before any other message of S_a.*

A sequence of k-SA objects could be driven by the per-round first
deliveries, so k-Stepped Broadcast "would" characterize iterated k-SA —
except that its predicate hinges on the global sequence number ``a``,
which is *not* preserved under restriction to a message subset.  The paper
exhibits the witness for k = 1 and two processes broadcasting
``m_i, m'_i``: deliveries ``[m_0, m'_0, m_1, m'_1]`` at p_0 and
``[m_0, m_1, m'_0, m'_1]`` at p_1 satisfy the predicate, but the
restriction to ``{m'_0, m_1}`` does not.  The compositionality checker
reproduces exactly that counterexample (see
``tests/specs/test_kstepped.py`` and experiment S1).

The abstraction *is* content-neutral: the predicate never reads contents.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.message import MessageId

__all__ = ["KSteppedBroadcastSpec"]


class KSteppedBroadcastSpec(BroadcastSpec):
    """k-Stepped Broadcast: at most k per-round first deliveries."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"{k}-Stepped Broadcast"

    def _rounds(self, execution: Execution) -> list[set[MessageId]]:
        """S_a sets: the a-th broadcast message of each process."""
        per_sender: dict[int, list[MessageId]] = {}
        for message in execution.broadcast_messages:
            per_sender.setdefault(message.sender, []).append(message.uid)
        depth = max((len(uids) for uids in per_sender.values()), default=0)
        return [
            {uids[a] for uids in per_sender.values() if len(uids) > a}
            for a in range(depth)
        ]

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        for round_index, round_set in enumerate(self._rounds(execution)):
            first_in_round: set[MessageId] = set()
            for process in range(execution.n):
                for message in execution.deliveries_of(process):
                    if message.uid in round_set:
                        first_in_round.add(message.uid)
                        break
            if len(first_in_round) > self.k:
                violations.append(
                    f"round {round_index}: {len(first_in_round)} distinct "
                    f"messages of S_{round_index} are delivered first by "
                    f"some process "
                    f"({', '.join(map(str, sorted(first_in_round)))}) "
                    f"> k={self.k}"
                )
        return violations

"""k-Bounded-Order (k-BO) Broadcast — Imbs, Mostéfaoui, Perrin & Raynal.

Ordering predicate (Section 1.3): *every set of k+1 messages contains two
messages delivered in the same order by all processes* (all processes that
deliver both).  For k = 1 this is Total-Order Broadcast.

k-BO Broadcast characterizes k-set agreement in the *shared-memory* model;
the paper proves (as a corollary of Theorem 1) that it cannot be
implemented from k-SA alone in message passing.  Section 3.2 uses it as
the worked example of a **compositional** abstraction: the predicate is a
universally-quantified property of message *sets*, so every subset of an
admissible execution's messages keeps satisfying it.  It is also
content-neutral, never inspecting contents.

The checker searches for a (k+1)-clique in the disagreement graph — a set
of k+1 messages no two of which are uniformly ordered.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import kbo_violation_witness

__all__ = ["KboBroadcastSpec"]


class KboBroadcastSpec(BroadcastSpec):
    """k-BO Broadcast: every k+1 messages contain a uniformly ordered pair."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"{k}-BO Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        witness = kbo_violation_witness(execution, self.k)
        if witness is None:
            return []
        return [
            f"the {self.k + 1} messages "
            f"{{{', '.join(map(str, witness))}}} contain no pair delivered "
            f"in the same order by all processes"
        ]

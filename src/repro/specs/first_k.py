"""First-k Broadcast — the Introduction's "simplistic" one-shot abstraction.

Section 1.4 opens with the naive proposal: an ordering property stating
that *at most k distinct messages can be delivered as the first messages
by the processes*.  One k-SA object can select the eligible first
messages, and conversely k-SA is solved by broadcasting proposals and
deciding the first delivered one — so this abstraction *is* equivalent to
(one-shot) k-SA.

The paper rejects it as "unsatisfactory": the property is meaningful only
once, so iterated use requires a fresh broadcast instance per k-SA object.
Formally, the defect is a **compositionality** failure: restricting an
admissible execution to a subset that excludes the agreed first messages
yields more than k distinct first deliveries.  The symmetry checkers
demonstrate this concretely (experiment S1), and the Theorem-1 pipeline
(experiment L9/T1) uses this very spec as the equivalence candidate whose
hypotheses fail.

It is content-neutral: the predicate counts identities, not contents.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import first_delivered_set

__all__ = ["FirstKBroadcastSpec"]


class FirstKBroadcastSpec(BroadcastSpec):
    """First-k Broadcast: at most k distinct first-delivered messages."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"First-{k} Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        firsts = first_delivered_set(execution)
        if len(firsts) <= self.k:
            return []
        return [
            f"{len(firsts)} distinct messages are delivered first "
            f"({', '.join(map(str, sorted(firsts)))}) > k={self.k}"
        ]

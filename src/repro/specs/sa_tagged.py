"""SA-tagged Broadcast — the paper's content-NON-neutral counterexample.

Section 3.2 (Content Neutrality) sketches a broadcast abstraction
equivalent to k-SA that cheats by inspecting message *contents*: an
ordering property applying only to messages of the special type
``SA(ksa, v)``, requiring that for each k-SA object identifier ``ksa``, at
most k distinct messages of the form ``SA(ksa, _)`` are delivered first
among that type by any process.

Because the predicate keys on the content structure, an injective renaming
that rewrites contents (for instance to opaque fresh tokens) makes every
constraint vacuous in one direction and, conversely, renaming plain
messages *into* ``SA``-typed ones manufactures violations — the
abstraction is not content-neutral, which is exactly why the paper
excludes such specifications.  In this library a content of the shape
``("SA", ksa, v)`` (a 3-tuple with first element the string ``"SA"``) is
recognized as an SA-typed message.
"""

from __future__ import annotations

from typing import Hashable

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.message import MessageId

__all__ = ["SaTaggedBroadcastSpec", "sa_content"]


def sa_content(ksa: str, value: Hashable) -> tuple[str, str, Hashable]:
    """Build the special SA-typed content ``SA(ksa, v)``."""
    return ("SA", ksa, value)


def _sa_key(content: Hashable) -> str | None:
    """The ksa identifier if ``content`` is SA-typed, else ``None``."""
    if (
        isinstance(content, tuple)
        and len(content) == 3
        and content[0] == "SA"
        and isinstance(content[1], str)
    ):
        return content[1]
    return None


class SaTaggedBroadcastSpec(BroadcastSpec):
    """Per-ksa first-delivery bound on SA-typed messages (content-sensitive)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"SA-tagged Broadcast (k={self.k})"

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        sa_uids: dict[str, set[MessageId]] = {}
        for message in execution.broadcast_messages:
            # Deliberately content-NON-neutral: this spec exists to
            # violate Def. 3 (Section 3.2).
            # repro-lint: disable-next-line=REP003
            ksa = _sa_key(message.content)
            if ksa is not None:
                sa_uids.setdefault(ksa, set()).add(message.uid)
        for ksa, uids in sa_uids.items():
            firsts: set[MessageId] = set()
            for process in range(execution.n):
                for message in execution.deliveries_of(process):
                    if message.uid in uids:
                        firsts.add(message.uid)
                        break
            if len(firsts) > self.k:
                violations.append(
                    f"{ksa}: {len(firsts)} distinct SA({ksa}, _) messages "
                    f"delivered first among that type > k={self.k}"
                )
        return violations

"""The catalogue of broadcast abstractions discussed in the paper.

Each module defines one abstraction as a :class:`~repro.core.BroadcastSpec`
subclass — a decidable predicate over broadcast-level executions:

=====================================  ==============  ================
abstraction                             compositional   content-neutral
=====================================  ==============  ================
:class:`SendToAllSpec`                  yes             yes
:class:`ReliableBroadcastSpec`          yes             yes
:class:`UniformReliableBroadcastSpec`   yes             yes
:class:`FifoBroadcastSpec`              yes             yes
:class:`CausalBroadcastSpec`            yes             yes
:class:`TotalOrderBroadcastSpec`        yes             yes
:class:`KboBroadcastSpec`               yes             yes
:class:`MutualBroadcastSpec`            yes             yes
:class:`PairBroadcastSpec`              yes             yes
:class:`ScdBroadcastSpec` / k-SCD       yes             yes
:class:`KSteppedBroadcastSpec`          **no**          yes
:class:`FirstKBroadcastSpec`            **no**          yes
:class:`SaTaggedBroadcastSpec`          no              **no**
:class:`GenericBroadcastSpec`           yes             **no**
=====================================  ==============  ================

(the table is re-derived mechanically by experiment S1, see
:mod:`repro.experiments.symmetry_matrix`).
"""

from .causal import CausalBroadcastSpec
from .fifo import FifoBroadcastSpec
from .first_k import FirstKBroadcastSpec
from .generic import (
    GenericBroadcastSpec,
    command_content,
    commands_conflict,
)
from .kbo import KboBroadcastSpec
from .kstepped import KSteppedBroadcastSpec
from .mutual import MutualBroadcastSpec
from .pair import PairBroadcastSpec
from .reliable import ReliableBroadcastSpec, UniformReliableBroadcastSpec
from .sa_tagged import SaTaggedBroadcastSpec, sa_content
from .scd import KScdBroadcastSpec, ScdBroadcastSpec, set_delivery_ranks
from .send_to_all import SendToAllSpec
from .total_order import TotalOrderBroadcastSpec

__all__ = [
    "CausalBroadcastSpec",
    "FifoBroadcastSpec",
    "FirstKBroadcastSpec",
    "GenericBroadcastSpec",
    "KScdBroadcastSpec",
    "KboBroadcastSpec",
    "KSteppedBroadcastSpec",
    "MutualBroadcastSpec",
    "PairBroadcastSpec",
    "ReliableBroadcastSpec",
    "SaTaggedBroadcastSpec",
    "ScdBroadcastSpec",
    "SendToAllSpec",
    "TotalOrderBroadcastSpec",
    "UniformReliableBroadcastSpec",
    "command_content",
    "commands_conflict",
    "sa_content",
    "set_delivery_ranks",
]

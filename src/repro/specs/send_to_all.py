"""Send-To-All Broadcast — the weakest broadcast abstraction (Section 3.1).

It is defined by the four base properties alone (BC-Validity,
BC-No-Duplication, BC-Local-Termination, BC-Global-CS-Termination) and, in
``CAMP_n[∅]``, is implemented by simply sending every message to every
process.  The paper's k = n boundary case pairs it with the trivially
solvable n-set agreement.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution

__all__ = ["SendToAllSpec"]


class SendToAllSpec(BroadcastSpec):
    """The minimal broadcast abstraction: no ordering predicate at all."""

    name = "Send-To-All Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        return []

"""Causal Broadcast — delivery respects the happened-before order.

Ordering predicate (Birman & Joseph; Raynal, Schiper & Toueg): if the
broadcast of ``m`` causally precedes the broadcast of ``m'`` — same-sender
order, or the broadcaster of ``m'`` delivered ``m`` before broadcasting
``m'``, transitively — then no process delivers ``m'`` before ``m``.

Causal Broadcast is implementable in ``CAMP_n[∅]`` and therefore offers the
"relativistic" end of the paper's concluding time spectrum (Section 5),
against Total-Order Broadcast's absolute timeline.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import causal_precedence, delivery_positions

__all__ = ["CausalBroadcastSpec"]


class CausalBroadcastSpec(BroadcastSpec):
    """Causal Broadcast: causally-ordered messages delivered in order."""

    name = "Causal Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        precedence = causal_precedence(execution)
        positions = delivery_positions(execution)
        for earlier, later in precedence.edges:
            for process, ranks in positions.items():
                if later in ranks and (
                    earlier not in ranks or ranks[later] < ranks[earlier]
                ):
                    violations.append(
                        f"p{process} delivers {later} without first "
                        f"delivering its causal predecessor {earlier}"
                    )
        return violations

"""SCD Broadcast and k-SCD Broadcast — set-constrained delivery.

Section 3.1's "Remark on Expressiveness" points at Set-Constrained-
Delivery Broadcast [Imbs, Mostéfaoui, Perrin & Raynal, TCS 2021] and its
extension k-SCD Broadcast [same authors, DISC 2017] as abstractions whose
interface deviates from single-message delivery: messages are delivered
within *unordered sets*.  The paper notes its definitions and proofs
generalize to this interface but keeps single deliveries for readability;
this module implements the generalization the paper skips.

Let ``m <_p m'`` denote "process p delivers the set containing m strictly
before the set containing m'" (members of the same set are unordered).

* **SCD (MS-Ordering)**: there are no processes p, q and messages m, m'
  with ``m <_p m'`` and ``m' <_q m``.  SCD Broadcast is computationally
  equivalent to read/write registers — like Mutual Broadcast, its
  ordering rejects 1-solo executions, so it has no implementation from
  k-SA objects (experiment M1).
* **k-SCD**: our formalization generalizes MS-Ordering the way k-BO
  generalizes Total Order: the *mutual-disorder graph* (an edge joins m
  and m' when some p, q order them strictly oppositely) must contain no
  clique of k+1 messages.  For k = 1 this is exactly MS-Ordering.

Both predicates quantify over message pairs/sets independently of the
rest of the execution, so they are compositional; neither reads contents,
so they are content-neutral — SCD-style interfaces do not escape
Theorem 1, which is why the paper can afford to skip them.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping

import networkx as nx

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.message import MessageId

__all__ = ["set_delivery_ranks", "ScdBroadcastSpec", "KScdBroadcastSpec"]


def set_delivery_ranks(
    execution: Execution,
) -> Mapping[int, Mapping[MessageId, int]]:
    """Per process, the index of the delivered *set* containing each message.

    Two messages of the same set share a rank — they are unordered at
    that process, which is the whole point of set-constrained delivery.
    """
    ranks: dict[int, dict[MessageId, int]] = {}
    for process, sets in execution.set_delivery_sequences.items():
        per_process: dict[MessageId, int] = {}
        for index, delivered_set in enumerate(sets):
            for message in delivered_set:
                per_process[message.uid] = index
        ranks[process] = per_process
    return ranks


def _mutual_disorder_graph(execution: Execution) -> nx.Graph:
    """Edges join message pairs some two processes order strictly oppositely."""
    ranks = set_delivery_ranks(execution)
    graph = nx.Graph()
    uids = [m.uid for m in execution.broadcast_messages]
    graph.add_nodes_from(uids)
    for first, second in combinations(uids, 2):
        orders = set()
        for per_process in ranks.values():
            if first in per_process and second in per_process:
                if per_process[first] < per_process[second]:
                    orders.add(1)
                elif per_process[first] > per_process[second]:
                    orders.add(-1)
                # equal ranks: same set, unordered — contributes nothing
        if len(orders) > 1:
            graph.add_edge(first, second)
    return graph


class KScdBroadcastSpec(BroadcastSpec):
    """k-SCD Broadcast: no k+1 messages are pairwise mutually disordered."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"{k}-SCD Broadcast" if k > 1 else "SCD Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        graph = _mutual_disorder_graph(execution)
        if self.k == 1:
            return [
                f"{first} and {second} are delivered in strictly opposite "
                f"set orders by two processes (MS-Ordering violated)"
                for first, second in graph.edges
            ]
        for clique in nx.find_cliques(graph):
            if len(clique) >= self.k + 1:
                witness = ", ".join(map(str, sorted(clique)[: self.k + 1]))
                return [
                    f"the {self.k + 1} messages {{{witness}}} are pairwise "
                    f"mutually disordered"
                ]
        return []


class ScdBroadcastSpec(KScdBroadcastSpec):
    """SCD Broadcast: the k = 1 instance (plain MS-Ordering)."""

    def __init__(self) -> None:
        super().__init__(1)

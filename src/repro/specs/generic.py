"""Generic Broadcast (Pedone & Schiper) — content-sensitive by design.

Section 3.2 uses Generic Broadcast as the literature's example of an
abstraction that violates content-neutrality: messages encapsulate
*commands* of a replicated data structure, and only **non-commuting**
command pairs need a uniform delivery order (in the vein of Generalized
Paxos).  Specifying it requires differentiating messages by content.

Here commands are contents of the shape ``("cmd", key, op)`` with ``op``
either ``"r"`` (read) or ``"w"`` (write); two commands *conflict* when
they target the same key and at least one is a write.  The ordering
predicate requires every conflicting pair to be delivered in the same
order by all processes (the non-conflicting pairs — different keys, or
two reads — are free).  Messages whose content is not command-shaped are
unconstrained.

The experiment S1 extension measures what the paper asserts: Generic
Broadcast is **compositional** (a per-pair predicate) but **not
content-neutral** — renaming two commuting reads into conflicting writes
manufactures an ordering violation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import delivery_positions, pair_orders

__all__ = ["GenericBroadcastSpec", "command_content", "commands_conflict"]


def command_content(key: str, op: str) -> tuple[str, str, str]:
    """Build a command content: ``op`` is ``"r"`` (read) or ``"w"`` (write)."""
    if op not in ("r", "w"):
        raise ValueError(f"op must be 'r' or 'w', got {op!r}")
    return ("cmd", key, op)


def _as_command(content: Hashable) -> tuple[str, str] | None:
    if (
        isinstance(content, tuple)
        and len(content) == 3
        and content[0] == "cmd"
        and content[2] in ("r", "w")
    ):
        return (content[1], content[2])
    return None


def commands_conflict(first: Hashable, second: Hashable) -> bool:
    """Two contents conflict iff same key and at least one write."""
    a, b = _as_command(first), _as_command(second)
    if a is None or b is None:
        return False
    return a[0] == b[0] and ("w" in (a[1], b[1]))


class GenericBroadcastSpec(BroadcastSpec):
    """Generic Broadcast: conflicting commands are uniformly ordered."""

    name = "Generic Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        positions = delivery_positions(execution)
        for first, second in combinations(execution.broadcast_messages, 2):
            # Generic Broadcast is the literature's content-sensitive
            # abstraction by design (Section 3.2): conflict detection
            # must read the commands.
            # repro-lint: disable-next-line=REP003
            if not commands_conflict(first.content, second.content):
                continue
            if len(pair_orders(positions, first.uid, second.uid)) > 1:
                violations.append(
                    f"conflicting commands {first} and {second} are "
                    f"delivered in different orders by different processes"
                )
        return violations

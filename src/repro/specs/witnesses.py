"""Hand-built executions for the paper's worked examples (Section 3.2).

These are the concrete witnesses the paper reasons about in prose:

* :func:`kstepped_paper_example` — the 1-Stepped Broadcast execution with
  deliveries ``[m_0, m'_0, m_1, m'_1]`` at p_0 and ``[m_0, m_1, m'_0,
  m'_1]`` at p_1, whose restriction to ``{m'_0, m_1}`` is not 1-Stepped;
* :func:`first_k_agreed_execution` — everyone first-delivers the same
  agreed message, then its own: admitted by First-k, but restricting away
  the agreed message leaves n distinct first deliveries;
* :func:`solo_first_execution` — every process delivers its own message
  first (the shape of the adversary's β), plain contents: admitted by the
  SA-tagged abstraction vacuously, and broken by renaming the messages
  *into* SA-typed contents (:func:`sa_typed_renaming`).

All executions are complete (every message delivered everywhere), so they
pass the liveness clauses as well as safety.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..core.execution import Execution
from ..core.message import Message, MessageFactory, MessageId, Renaming
from ..core.steps import Step
from ..core.actions import BroadcastInvoke, BroadcastReturn, DeliverAction
from .sa_tagged import sa_content

__all__ = [
    "broadcast_steps",
    "first_k_agreed_execution",
    "generic_conflict_renaming",
    "kstepped_paper_example",
    "sa_typed_renaming",
    "solo_first_execution",
]


def broadcast_steps(process: int, message: Message) -> list[Step]:
    """The invoke/return step pair of one broadcast."""
    return [
        Step(process, BroadcastInvoke(message)),
        Step(process, BroadcastReturn(message)),
    ]


def _deliveries(process: int, messages: Sequence[Message]) -> list[Step]:
    return [Step(process, DeliverAction(m)) for m in messages]


def kstepped_paper_example() -> tuple[Execution, frozenset[MessageId]]:
    """The Section 3.2 counterexample to 1-Stepped compositionality.

    Returns the execution together with the violating restriction subset
    ``{m'_0, m_1}``.
    """
    factory = MessageFactory()
    m0 = factory.new(0, "m0")
    m0p = factory.new(0, "m0'")
    m1 = factory.new(1, "m1")
    m1p = factory.new(1, "m1'")
    steps: list[Step] = []
    steps += broadcast_steps(0, m0)
    steps += broadcast_steps(1, m1)
    steps += broadcast_steps(0, m0p)
    steps += broadcast_steps(1, m1p)
    steps += _deliveries(0, [m0, m0p, m1, m1p])
    steps += _deliveries(1, [m0, m1, m0p, m1p])
    return Execution.of(steps, 2), frozenset({m0p.uid, m1.uid})


def first_k_agreed_execution(n: int) -> tuple[Execution, frozenset[MessageId]]:
    """Everyone first-delivers p_0's message, then the rest.

    Admitted by First-k Broadcast for every k ≥ 1 (a single distinct first
    delivery).  Returns the execution and the restriction subset that
    removes the agreed message — after which every process p ≠ 0
    first-delivers its own message (and p_0 some other process's), i.e.
    n - 1 distinct first deliveries: a violation of First-k for every
    k < n - 1, so use ``n = k + 2`` to break First-k Broadcast.
    """
    factory = MessageFactory()
    messages = [factory.new(p, f"v{p}") for p in range(n)]
    steps: list[Step] = []
    for p, message in enumerate(messages):
        steps += broadcast_steps(p, message)
    for p in range(n):
        order = [messages[0]]
        if p != 0:
            order.append(messages[p])
        order += [m for m in messages if m.sender not in (0, p)]
        steps += _deliveries(p, order)
    subset = frozenset(m.uid for m in messages[1:])
    return Execution.of(steps, n), subset


def solo_first_execution(n: int) -> Execution:
    """Every process delivers its own message first, then the others.

    This is the broadcast-level shape of the adversary's β for N = 1; with
    plain contents it is vacuously admitted by the SA-tagged abstraction.
    """
    factory = MessageFactory()
    messages = [factory.new(p, f"v{p}") for p in range(n)]
    steps: list[Step] = []
    for p, message in enumerate(messages):
        steps += broadcast_steps(p, message)
    for p in range(n):
        order = [messages[p]] + [m for m in messages if m.sender != p]
        steps += _deliveries(p, order)
    return Execution.of(steps, n)


def generic_conflict_renaming(execution: Execution, key: str = "x") -> Renaming:
    """Rename every message into a *write* command on one shared key.

    The inverse move of Generic Broadcast's commutativity: an execution
    whose disagreeing pairs were all commuting (different keys, or reads)
    becomes one where every pair conflicts — manufacturing ordering
    violations and exhibiting the abstraction's content-sensitivity.
    Distinct messages may map to equal contents; injectivity is on
    messages (identities are preserved), as Definition 3 requires.
    """
    from .generic import command_content

    return Renaming(
        {
            message.uid: command_content(key, "w")
            for message in execution.broadcast_messages
        }
    )


def sa_typed_renaming(execution: Execution, ksa: str = "ksa0") -> Renaming:
    """Rename every message of the execution into ``SA(ksa, i)`` contents.

    Injective (distinct values per message).  Applied to
    :func:`solo_first_execution` it manufactures more than k distinct
    first-delivered SA-typed messages, exhibiting the content-sensitivity
    of the Section 3.2 counterexample abstraction.
    """
    return Renaming(
        {
            message.uid: sa_content(ksa, index)
            for index, message in enumerate(execution.broadcast_messages)
        }
    )

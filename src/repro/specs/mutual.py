"""Mutual Broadcast — the abstraction characterizing read/write registers.

The paper's Introduction (§1.2) cites Mutual Broadcast [Déprés,
Mostéfaoui, Perrin & Raynal, PODC 2023] as the broadcast abstraction
computationally equivalent to atomic read/write registers.  Its ordering
property (MB-Ordering) is a per-pair mutuality constraint:

    for any two messages m broadcast by p and m' broadcast by q,
    p delivers m' before m, **or** q delivers m before m'.

(A process that never delivers the relevant message counts as "not
before".)  The property forbids two processes from each "seeing their own
message first" — it is exactly the two-message anti-*solo* condition, so
Mutual Broadcast admits **no** 1-solo execution (Definition 5).  Combined
with Lemma 10 this yields a satisfying companion result to the paper's
corollary, demonstrated in experiment M1: *no algorithm over k-SA objects
implements Mutual Broadcast in message passing* — the adversary's β is
1-solo, which MB-Ordering rejects — matching the fact that k-SA (k > 1)
cannot emulate shared memory (§1.3).

Mutual Broadcast is both compositional (a per-pair predicate) and
content-neutral, so it is an *admissible* abstraction in the paper's
sense — just not one equivalent to k-SA.
"""

from __future__ import annotations

from itertools import combinations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import delivery_positions

__all__ = ["MutualBroadcastSpec"]


class MutualBroadcastSpec(BroadcastSpec):
    """Mutual Broadcast: every cross-process message pair is mutual."""

    name = "Mutual Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        positions = delivery_positions(execution)
        messages = execution.broadcast_messages
        for first, second in combinations(messages, 2):
            p, q = first.sender, second.sender
            if p == q:
                continue
            p_ranks = positions.get(p, {})
            q_ranks = positions.get(q, {})
            # p has irrevocably failed its half once it delivers its own m
            # without having delivered m' strictly earlier (and dually for
            # q); a pair is violated when both halves have failed — the
            # safety reading, stable under extension of the execution.
            p_failed = first.uid in p_ranks and not (
                second.uid in p_ranks
                and p_ranks[second.uid] < p_ranks[first.uid]
            )
            q_failed = second.uid in q_ranks and not (
                first.uid in q_ranks
                and q_ranks[first.uid] < q_ranks[second.uid]
            )
            if p_failed and q_failed:
                violations.append(
                    f"messages {first.uid} (p{p}) and {second.uid} (p{q}) "
                    f"are not mutual: each sender delivers its own message "
                    f"without having delivered the other's first"
                )
        return violations

"""(Uniform) Reliable Broadcast — liveness-strengthened abstractions.

The paper cites Reliable Broadcast and Uniform Reliable Broadcast
(Hadzilacos & Toueg) as the canonical examples of *liveness* predicates
layered on Send-To-All Broadcast (Section 3.2):

* **Reliable Broadcast** — if a *correct* process delivers ``m``, then all
  correct processes deliver ``m`` (covers messages of faulty senders that
  some correct process managed to deliver);
* **Uniform Reliable Broadcast** — if *any* process (correct or not)
  delivers ``m``, then all correct processes deliver ``m``.

Both are content-neutral and compositional: their clauses quantify over
individual messages, so restriction and renaming preserve them.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.message import MessageId

__all__ = ["ReliableBroadcastSpec", "UniformReliableBroadcastSpec"]


def _delivered_by(execution: Execution) -> dict[MessageId, set[int]]:
    """Map each message to the set of processes that deliver it."""
    delivered: dict[MessageId, set[int]] = {}
    for process, sequence in execution.delivery_sequences.items():
        for message in sequence:
            delivered.setdefault(message.uid, set()).add(process)
    return delivered


class ReliableBroadcastSpec(BroadcastSpec):
    """Reliable Broadcast: correct-delivery implies everywhere-delivery."""

    name = "Reliable Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        return []

    def liveness_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        correct = execution.correct
        for uid, deliverers in _delivered_by(execution).items():
            if deliverers & correct:
                for process in correct - deliverers:
                    violations.append(
                        f"correct p{process} misses {uid}, delivered by "
                        f"correct "
                        f"p{min(deliverers & correct)}"
                    )
        return violations


class UniformReliableBroadcastSpec(BroadcastSpec):
    """Uniform Reliable Broadcast: any delivery implies correct delivery."""

    name = "Uniform Reliable Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        return []

    def liveness_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        correct = execution.correct
        for uid, deliverers in _delivered_by(execution).items():
            for process in correct - deliverers:
                violations.append(
                    f"correct p{process} misses {uid}, delivered by "
                    f"p{min(deliverers)}"
                )
        return violations

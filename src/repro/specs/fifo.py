"""FIFO Broadcast — per-sender delivery order (Birman & Joseph).

Ordering predicate: if a process broadcasts ``m`` before ``m'``, then no
process delivers ``m'`` before ``m``.  The predicate constrains the
relative order of same-sender messages only; it is content-neutral (it
never inspects contents) and compositional (it is a conjunction of
per-pair clauses, each invariant under restriction to any superset of the
pair — the argument the paper spells out for k-BO in Section 3.2).
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import delivery_positions

__all__ = ["FifoBroadcastSpec"]


class FifoBroadcastSpec(BroadcastSpec):
    """FIFO Broadcast: same-sender messages delivered in broadcast order."""

    name = "FIFO Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        violations: list[str] = []
        positions = delivery_positions(execution)
        broadcast_rank = {
            m.uid: rank for rank, m in enumerate(execution.broadcast_messages)
        }
        per_sender: dict[int, list] = {}
        for message in execution.broadcast_messages:
            per_sender.setdefault(message.sender, []).append(message.uid)
        for sender, uids in per_sender.items():
            uids.sort(key=broadcast_rank.__getitem__)
            for earlier_index, earlier in enumerate(uids):
                for later in uids[earlier_index + 1:]:
                    for process, ranks in positions.items():
                        if later in ranks and (
                            earlier not in ranks
                            or ranks[later] < ranks[earlier]
                        ):
                            violations.append(
                                f"p{process} delivers {later} without "
                                f"first delivering p{sender}'s earlier "
                                f"{earlier}"
                            )
        return violations

"""Total-Order Broadcast — the abstraction that characterizes consensus.

Ordering predicate: any two processes that both deliver two messages
deliver them in the same relative order.  Equivalently (and this is how
the checker is implemented) the *disagreement graph* of the execution has
no edge — the k = 1 instance of k-BO Broadcast's clique criterion.

The paper's Section 1.2 recalls that Total-Order Broadcast is
computationally equivalent to consensus (Chandra & Toueg), the k = 1
anchor of the k-SA question; :mod:`repro.agreement` implements both
reductions on the simulator.
"""

from __future__ import annotations

from ..core.broadcast_spec import BroadcastSpec
from ..core.execution import Execution
from ..core.order import disagreement_graph

__all__ = ["TotalOrderBroadcastSpec"]


class TotalOrderBroadcastSpec(BroadcastSpec):
    """Total-Order Broadcast: all processes agree on all pair orders."""

    name = "Total Order Broadcast"

    def ordering_violations(self, execution: Execution) -> list[str]:
        # Edges are canonicalised (each pair uid-sorted, pairs listed in
        # uid order) so the rendered violations depend only on per-process
        # delivery observations, never on the global interleaving that
        # happened to build the graph — executions reaching the same state
        # along different prefixes must report identical violations.
        graph = disagreement_graph(execution)
        edges = sorted(tuple(sorted(edge)) for edge in graph.edges)
        return [
            f"{first} and {second} are delivered in different orders by "
            f"different processes"
            for first, second in edges
        ]

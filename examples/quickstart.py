"""Quickstart: simulate broadcast algorithms and check their specifications.

This walks the three layers of the library in ~60 lines:

1. run a broadcast *algorithm* on the CAMP_n simulator (asynchrony,
   crashes, seeded replayability);
2. project the recorded execution to the broadcast level;
3. check it against broadcast *specifications* and inspect ordering
   analytics.

Run: ``python examples/quickstart.py``
"""

from repro.analysis import ordering_stats
from repro.broadcasts import CausalBroadcast, SendToAllBroadcast
from repro.core import check_channels
from repro.runtime import CrashSchedule, Simulator
from repro.specs import CausalBroadcastSpec, FifoBroadcastSpec


def main() -> None:
    n = 4

    # A 4-process chat where p3 crashes mid-run.
    simulator = Simulator(
        n, lambda pid, size: CausalBroadcast(pid, size), seed=2024
    )
    result = simulator.run(
        {p: [f"hello-{p}.{i}" for i in range(3)] for p in range(n)},
        crash_schedule=CrashSchedule({3: 40}),
    )
    print(f"simulated {result.steps_taken} steps, quiescent={result.quiescent}")
    for p in range(n):
        print(f"  p{p} delivered: {result.delivered_contents(p)}")

    # The executions the simulator records are first-class objects ...
    execution = result.execution
    print(f"\nchannel axioms: {check_channels(execution)}")

    # ... whose broadcast-level projection is what specifications judge.
    beta = execution.broadcast_projection()
    for spec in (CausalBroadcastSpec(), FifoBroadcastSpec()):
        print(spec.admits(beta))

    print(f"\nordering analytics: {ordering_stats(beta)}")

    # Same seed, same run — everything is replayable.
    replay = Simulator(
        n, lambda pid, size: CausalBroadcast(pid, size), seed=2024
    ).run(
        {p: [f"hello-{p}.{i}" for i in range(3)] for p in range(n)},
        crash_schedule=CrashSchedule({3: 40}),
    )
    assert replay.execution == result.execution
    print("\nreplay with the same seed is step-identical ✓")

    # Weaker abstractions admit more executions: the same workload under
    # plain Send-To-All usually violates causal order somewhere.
    weak = Simulator(
        n, lambda pid, size: SendToAllBroadcast(pid, size), seed=5
    ).run({p: [f"m{p}.{i}" for i in range(3)] for p in range(n)})
    verdict = CausalBroadcastSpec().admits(
        weak.execution.broadcast_projection()
    )
    print(
        f"\nSend-To-All trace against the Causal spec: "
        f"{'admitted' if verdict.admitted else 'rejected (as expected)'}"
    )


if __name__ == "__main__":
    main()

"""Why k-SA cannot emulate shared memory: a litmus test over broadcasts.

Section 1.3 of the paper rests on the fact that k-set agreement (k > 1)
cannot emulate read/write registers in message passing.  This example
makes that gap tangible with the classic *store-buffer* litmus test:

    p_i:  write(R_i, 1); read(R_j)        (i ≠ j)

Registers emulated over a broadcast: a write broadcasts ``WRITE(R, v)``
and a read returns the last locally-delivered value of the register.
With **atomic** registers, whenever p_i's write completes before p_j's
read starts, that read must see the write.

* Over **Total-Order Broadcast** (consensus power, k = 1): in every
  seeded run, reads see every write completed before them — the
  emulation is sound.

* Over any broadcast **implemented from k-SA objects**: Algorithm 1
  produces an execution in which the processes run one after the other,
  each delivering only its own messages — so every process's read misses
  all *earlier, completed* writes.  The emulated register is not atomic,
  and no implementation tweak can fix it (Lemma 10 applies to all of
  them): that is the register gap behind Theorem 1.

* Under a **majority of correct processes** (t < n/2) — an assumption the
  paper's wait-free model deliberately does not make — registers become
  implementable *without any agreement object at all*: the ABD quorum
  emulation passes the same litmus and the linearizability checker, and
  the moment the majority is gone it simply blocks.  The register
  boundary is the majority assumption, not agreement power — k-SA adds
  nothing here.

Run: ``python examples/register_emulation_gap.py``
"""

from repro.adversary import adversarial_scheduler
from repro.broadcasts import TotalOrderBroadcast, TrivialKsaBroadcast
from repro.registers import (
    AbdRegisterProcess,
    ServiceSimulator,
    check_linearizable,
)
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.service import Invocation


def read_after_phase(execution, reader: int, writer: int) -> int:
    """The value of ``R_writer`` as the reader's delivery state shows it.

    Returns 1 iff the reader has delivered the writer's WRITE message by
    the end of its own steps.
    """
    delivered = execution.deliveries_of(reader)
    return int(any(m.sender == writer for m in delivered))


def main() -> None:
    n = 3

    print("Store-buffer litmus over Total-Order Broadcast (k = 1):")
    for seed in range(3):
        simulator = Simulator(
            n, lambda pid, size: TotalOrderBroadcast(pid, size),
            k=1, seed=seed,
        )
        result = simulator.run(
            {p: [("WRITE", f"R{p}", 1)] for p in range(n)}
        )
        # all writes complete (quiescent run): every read sees every write
        reads = {
            (i, j): read_after_phase(result.execution, i, j)
            for i in range(n)
            for j in range(n)
            if i != j
        }
        assert all(reads.values())
        print(f"  seed={seed}: all cross-reads see the writes ✓ {reads}")

    print(
        "\nSame litmus under Algorithm 1, registers over a broadcast "
        "built from 2-SA objects:"
    )
    result = adversarial_scheduler(
        2, 1, lambda pid, n_: TrivialKsaBroadcast(pid, n_)
    )
    execution = result.execution
    # the schedule is sequential: p1's phase completes before p2 starts,
    # p2's before p3 — so later readers MUST see earlier writes... but:
    violations = []
    for reader in range(1, 3):
        for writer in range(reader):
            seen = read_after_phase(result.beta, reader, writer)
            status = "sees" if seen else "MISSES (atomicity violated)"
            print(
                f"  p{reader + 1} read of R{writer + 1} — the write "
                f"completed earlier in the schedule — {status}"
            )
            if not seen:
                violations.append((reader, writer))
    assert violations, "the adversarial run must break the emulation"
    print(
        f"\n{len(violations)} stale reads: the emulated registers are not "
        f"atomic, matching §1.3 — k-SA (k > 1) cannot emulate shared "
        f"memory, which is why k-BO Broadcast's shared-memory equivalence "
        f"with k-SA does not transfer to message passing."
    )

    print(
        "\nThe same litmus over ABD quorum registers (no agreement "
        "objects, t < n/2):"
    )
    simulator = ServiceSimulator(
        5, lambda pid, size: AbdRegisterProcess(pid, size), seed=7
    )
    run = simulator.run(
        {
            p: [Invocation("write", f"R{p}", 1),
                Invocation("read", f"R{(p + 1) % 3}")]
            for p in range(3)
        },
        crash_schedule=CrashSchedule({4: 20}),  # a minority may crash
    )
    report = check_linearizable(run.history)
    print(f"  {len(run.history.complete())} operations, {report}")
    assert report.ok

    run = ServiceSimulator(
        5, lambda pid, size: AbdRegisterProcess(pid, size), seed=7
    ).run(
        {0: [Invocation("write", "R", 1)]},
        crash_schedule=CrashSchedule.initial([2, 3, 4]),
    )
    print(
        f"  ...and with a majority crashed it blocks, as it must: "
        f"{dict(run.blocked)}"
    )


if __name__ == "__main__":
    main()

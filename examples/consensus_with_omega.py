"""Consensus in message passing, done right: Paxos over Ω + majority.

The paper's k = 1 anchor says consensus ⇔ Total-Order Broadcast.  This
example supplies consensus itself as a message-passing protocol — the
synod algorithm over the eventual-leader failure detector Ω — and shows
the classical behaviours:

1. with a stable leader, everyone decides one proposed value;
2. the leader may crash mid-run: once Ω re-stabilizes on a correct
   process, the survivors still decide (one value);
3. before Ω stabilizes, leadership rotates and ballots preempt each
   other — safety (a single decided value) holds through the chaos,
   only termination waits for stability.  That split — safety
   unconditional, liveness behind an oracle — is exactly what the
   wait-free k-SA world of the paper *cannot* buy for 1 < k < n.

Run: ``python examples/consensus_with_omega.py``
"""

from repro.agreement import PaxosProcess
from repro.detectors import Clock, OmegaOracle
from repro.registers import ServiceSimulator
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


def run_consensus(*, n=5, seed=0, crash=None, stabilize_at=0):
    crash = crash or CrashSchedule.none()
    clock = Clock()
    omega = OmegaOracle(n, crash, clock, stabilize_at=stabilize_at)
    simulator = ServiceSimulator(
        n,
        lambda pid, size: PaxosProcess(pid, size, omega),
        seed=seed,
        clock=clock,
    )
    outcome = simulator.run(
        {p: [Invocation("propose", "slot-0", f"v{p}")] for p in range(n)},
        crash_schedule=crash,
        max_steps=60_000,
    )
    decisions = {
        record.process: record.result
        for record in outcome.history.complete()
    }
    return outcome, decisions


def main() -> None:
    print("1. stable leader from the start:")
    outcome, decisions = run_consensus(seed=11)
    print(f"   decisions: {dict(sorted(decisions.items()))}")
    assert len(set(decisions.values())) == 1

    print("\n2. the leader crashes mid-run (Ω re-stabilizes):")
    outcome, decisions = run_consensus(
        seed=3, crash=CrashSchedule({0: 40}), stabilize_at=150
    )
    print(
        f"   survivors decide: {dict(sorted(decisions.items()))} "
        f"(p1 took over)"
    )
    assert len(set(decisions.values())) == 1
    assert not outcome.blocked

    print("\n3. a long unstable period (rotating leadership):")
    outcome, decisions = run_consensus(seed=7, stabilize_at=300)
    distinct = set(decisions.values())
    print(
        f"   {len(decisions)} processes decided "
        f"{distinct} after {outcome.steps_taken} steps — one value, "
        f"despite ballot preemption during rotation"
    )
    assert len(distinct) == 1

    print(
        "\nconsensus (1-SA) is solvable in CAMP_n[Ω] with a majority — "
        "the k = 1 boundary the paper anchors on; Theorem 1 is about the "
        "strict middle 1 < k < n, where no broadcast abstraction "
        "(content-neutral + compositional) plays the role Total-Order "
        "Broadcast plays here."
    )


if __name__ == "__main__":
    main()

"""State-machine replication over Total-Order Broadcast (the k = 1 anchor).

Section 1.2 recalls why Total-Order Broadcast matters: State Machine
Replication builds on it, and it is computationally equivalent to
consensus.  This example replicates a tiny key-value store across n
simulated processes: every replica TO-broadcasts its commands, applies
delivered commands in delivery order, and — because the abstraction
guarantees a single total order — all replicas converge to identical
state and identical command logs, under crashes and arbitrary asynchrony.

Run: ``python examples/state_machine_replication.py``
"""

from repro.broadcasts import TotalOrderBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.specs import TotalOrderBroadcastSpec


def apply_command(store: dict, command: tuple) -> None:
    """Interpret one command against a key-value store."""
    op, key, value = command
    if op == "put":
        store[key] = value
    elif op == "inc":
        store[key] = store.get(key, 0) + value


def main() -> None:
    n = 4
    commands = {
        0: [("put", "x", 1), ("inc", "y", 2)],
        1: [("inc", "y", 5), ("put", "z", "a")],
        2: [("put", "x", 7)],
        3: [("inc", "y", 1)],
    }

    simulator = Simulator(
        n, lambda pid, size: TotalOrderBroadcast(pid, size), k=1, seed=99
    )
    result = simulator.run(
        commands, crash_schedule=CrashSchedule({3: 60})
    )

    # Replay each replica's delivery log through the state machine.
    stores: dict[int, dict] = {}
    logs: dict[int, list] = {}
    for p in range(n):
        store: dict = {}
        log = result.delivered_contents(p)
        for command in log:
            apply_command(store, command)
        stores[p] = store
        logs[p] = log
        print(f"replica p{p}: log={log}")
        print(f"            state={store}")

    correct = sorted(result.execution.correct)
    reference = logs[correct[0]]
    agreed = all(logs[p] == reference for p in correct)
    print(
        f"\ncorrect replicas {correct} apply identical logs: "
        f"{'✓' if agreed else '✗'}"
    )
    assert agreed, "total order broken!"
    assert all(stores[p] == stores[correct[0]] for p in correct)

    verdict = TotalOrderBroadcastSpec().admits(
        result.execution.broadcast_projection(), assume_complete=False
    )
    print(f"Total-Order specification on the recorded trace: {verdict}")


if __name__ == "__main__":
    main()

"""The Theorem 1 contradiction, narrated step by step.

This example walks the entire proof pipeline for the paper's own
"simplistic" equivalence candidate (Section 1.4): First-k Broadcast,
implemented over a single shared k-SA object, paired with the k-SA
algorithm "decide your first delivery".

 1. **Solo runs (Lemma 9 setup).**  Each process runs the k-SA algorithm
    A' alone; N_i messages are delivered before it decides.
 2. **Algorithm 1 (Lemma 10).**  The adversarial scheduler drives the
    First-k implementation into an N-solo execution β of CAMP_{k+1}[k-SA].
 3. **Restriction γ (compositionality).**  β is restricted to the witness
    messages.
 4. **Renaming δ (content-neutrality).**  γ's messages are renamed into
    the solo-run proposals.
 5. **Contradiction.**  δ is indistinguishable from the solo runs, so A'
    decides k+1 distinct values on it — k-SA-Agreement is violated.  The
    only escape is that some Theorem 1 hypothesis fails for the candidate
    specification; the pipeline localizes which one.

Run: ``python examples/impossibility_walkthrough.py [k]``
"""

import sys

from repro.adversary import run_theorem_pipeline
from repro.analysis import render_lanes
from repro.broadcasts import FirstKKsaBroadcast
from repro.core import check_compositional
from repro.specs import FirstKBroadcastSpec


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = FirstKBroadcastSpec(k)
    result = run_theorem_pipeline(
        k, lambda pid, n: FirstKKsaBroadcast(pid, n), candidate_spec=spec
    )

    print("STEP 1 — solo runs of A' (decide-first-delivered):")
    for i, solo in sorted(result.solo_runs.items()):
        print(
            f"  p{i + 1} proposes {solo.proposal}, delivers "
            f"{[str(m) for m in solo.messages]}, decides {solo.decision} "
            f"(N_{i + 1} = {solo.n_i})"
        )
    print(f"  ⇒ N = max(1, N_i) = {result.n_value}")

    print(
        f"\nSTEP 2 — Algorithm 1 drives {FirstKKsaBroadcast.__name__} into "
        f"an N-solo execution β ({len(result.adversary.beta)} broadcast "
        f"events):"
    )
    print(f"  witness: {result.adversary.witness}")

    print("\nSTEP 3 — restriction γ of β to the witness messages:")
    print(render_lanes(result.gamma))
    print(
        f"  spec verdict on γ: "
        f"{'admitted' if result.gamma_verdict.admitted else 'REJECTED'}"
    )

    print("\nSTEP 4 — renaming δ (witness messages → solo proposals):")
    print(render_lanes(result.delta))

    print("\nSTEP 5 — replaying A' on δ:")
    for pid, decision in sorted(result.decisions.items()):
        print(f"  p{pid + 1} decides {decision}")
    print(
        f"  ⇒ {result.distinct_decisions} distinct decisions > k = {k}: "
        f"k-SA-Agreement "
        f"{'VIOLATED' if result.agreement_violated else 'holds'}"
    )

    print(f"\nVERDICT — failing hypothesis: {result.failing_hypothesis}")

    print(
        "\nFor confirmation, the generic compositionality checker finds "
        "its own counterexample on β:"
    )
    print(f"  {check_compositional(spec, result.adversary.beta, assume_complete=False)}")


if __name__ == "__main__":
    main()

"""Exhaustive verification: check a broadcast over *every* schedule.

Seeded simulation samples the schedule space; the explorer enumerates
it.  This example verifies Uniform Reliable Broadcast over *all*
schedules of a small configuration, then flips to falsification mode and
asks for the smallest schedule under which plain Send-To-All violates
Total Order — getting back a decision sequence that replays the
violation deterministically.

Run: ``python examples/exhaustive_verification.py``
"""

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import (
    Simulator,
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import TotalOrderBroadcastSpec, UniformReliableBroadcastSpec


def main() -> None:
    print("1. verify URB on every schedule of a 2-process, 1-broadcast run:")
    simulator = Simulator(
        2, lambda pid, n: UniformReliableBroadcast(pid, n)
    )
    result = explore_schedules(
        simulator,
        {0: ["a"]},
        combine_properties(
            spec_property(UniformReliableBroadcastSpec()),
            channels_property(),
        ),
    )
    print(f"   {result}")
    assert result.exhausted and result.ok

    print("\n2. two senders — the schedule tree is already much bigger:")
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))
    result = explore_schedules(
        simulator,
        {0: ["a"], 1: ["b"]},
        channels_property(),
    )
    print(f"   {result}")
    assert result.exhausted and result.ok

    print(
        "\n3. falsify: the smallest-depth schedule where Send-To-All "
        "breaks Total Order:"
    )
    result = explore_schedules(
        simulator,
        {0: ["a"], 1: ["b"]},
        spec_property(TotalOrderBroadcastSpec(), assume_complete=False),
        stop_at_first_violation=True,
    )
    violation = result.violations[0]
    print(f"   found after {result.terminal_schedules} schedules:")
    print(f"   {violation}")

    print("\n4. replay the violating guide step by step:")
    replay = Simulator(
        2, lambda pid, n: SendToAllBroadcast(pid, n), atomic_local=True
    ).run({0: ["a"], 1: ["b"]}, guide=list(violation.guide))
    for process in (0, 1):
        order = [str(m.uid) for m in replay.execution.deliveries_of(process)]
        print(f"   p{process + 1} delivers {order}")
    verdict = TotalOrderBroadcastSpec().admits(
        replay.execution.broadcast_projection(), assume_complete=False
    )
    assert not verdict.admitted
    print("   → the two processes disagree, exactly as reported ✓")


if __name__ == "__main__":
    main()

"""Why compositionality matters: two applications, one broadcast service.

Section 3.2 motivates compositionality with a system in which two
applications share one broadcast service: an iterated-agreement algorithm
and a plain messaging service.  Each application only sees *its own
subset* of the service's messages.  An abstraction whose ordering
predicate survives restriction to any subset (k-BO, FIFO, Causal, Total
Order) serves both applications simultaneously; one whose predicate hangs
on global sequence numbers (k-Stepped Broadcast) silently loses its
guarantee the moment a second application's messages interleave.

This example builds the paper's exact counterexample execution for
1-Stepped Broadcast, splits its messages into the two applications'
subsets, and shows the guarantee evaporate — while Total-Order Broadcast,
checked on the same split, survives.

Run: ``python examples/composition_pitfalls.py``
"""

from repro.core import check_compositional
from repro.specs import KSteppedBroadcastSpec, TotalOrderBroadcastSpec
from repro.specs.witnesses import kstepped_paper_example
from repro.broadcasts import TotalOrderBroadcast
from repro.runtime import Simulator


def main() -> None:
    execution, paper_subset = kstepped_paper_example()
    stepped = KSteppedBroadcastSpec(1)

    print("The Section 3.2 execution (two processes, two rounds):")
    for p in (0, 1):
        print(
            f"  p{p} delivers "
            f"{[str(m.uid) for m in execution.deliveries_of(p)]}"
        )
    print(
        f"\n1-Stepped Broadcast admits the full execution: "
        f"{stepped.admits(execution).admitted} ✓"
    )

    restricted = execution.restrict(paper_subset)
    verdict = stepped.admits(restricted)
    print(
        f"...but the messaging app's subset "
        f"{sorted(map(str, paper_subset))} (the paper's {{m'_0, m_1}}) "
        f"is {'admitted' if verdict.admitted else 'REJECTED'}:"
    )
    for violation in verdict.ordering:
        print(f"    {violation}")

    print(
        f"\nthe generic checker finds this automatically:\n  "
        f"{check_compositional(stepped, execution)}"
    )

    # Contrast: a genuinely compositional abstraction on a real workload.
    simulator = Simulator(
        3, lambda pid, n: TotalOrderBroadcast(pid, n), k=1, seed=3
    )
    result = simulator.run(
        {
            0: [("agree", 0), ("chat", "hi"), ("agree", 1)],
            1: [("chat", "hello"), ("agree", 0)],
            2: [("agree", 2), ("chat", "hey")],
        }
    )
    beta = result.execution.broadcast_projection()
    to_spec = TotalOrderBroadcastSpec()
    full = to_spec.admits(beta, assume_complete=False).admitted

    chat_only = [
        m.uid
        for m in beta.broadcast_messages
        if m.content[0] == "chat"
    ]
    agree_only = [
        m.uid
        for m in beta.broadcast_messages
        if m.content[0] == "agree"
    ]
    chat_ok = to_spec.admits(
        beta.restrict(chat_only), assume_complete=False
    ).admitted
    agree_ok = to_spec.admits(
        beta.restrict(agree_only), assume_complete=False
    ).admitted
    print(
        f"\nTotal-Order Broadcast under the same sharing pattern: "
        f"full trace {full}, chat subset {chat_ok}, agreement subset "
        f"{agree_ok} — every application keeps the guarantee ✓"
    )
    print(
        f"  checker: {check_compositional(to_spec, beta, assume_complete=False)}"
    )


if __name__ == "__main__":
    main()

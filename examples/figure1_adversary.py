"""Reproduce Figure 1: the adversarial execution of Algorithm 1.

Runs the paper's adversarial scheduler against a concrete broadcast
implementation built on k-SA objects, renders the schedule in the figure's
conventions, and verifies the caption's claims (admissibility, Lemmas 1-8,
and the N-solo property of Definition 5).

A graphical version is written next to the script as ``figure1.svg``.

Run: ``python examples/figure1_adversary.py [k] [N] [first-k|trivial-ksa|kbo-attempt|scd-attempt|k-stepped]``
"""

import pathlib
import sys

from repro.adversary import adversarial_scheduler, check_all_lemmas
from repro.analysis import render_figure1, render_figure1_svg
from repro.experiments.harness import KSA_ALGORITHMS, algorithm_factory


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    n_value = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    name = sys.argv[3] if len(sys.argv) > 3 else "first-k"

    result = adversarial_scheduler(
        k, n_value, algorithm_factory(KSA_ALGORITHMS[name])
    )
    print(render_figure1(result))
    print()
    print(f"attacked implementation: {KSA_ALGORITHMS[name].__name__}")
    print(f"witness: {result.witness}")
    print()
    for report in check_all_lemmas(result):
        print(report)

    svg_path = pathlib.Path(__file__).with_name("figure1.svg")
    svg_path.write_text(render_figure1_svg(result))
    print(f"\ngraphical rendering written to {svg_path}")


if __name__ == "__main__":
    main()
